// Sharded serving battery: cluster-aware partitioning, halo-row counting,
// sharded-vs-unsharded bitwise parity at 1/2/4 shards across ring
// wraparounds and worker counts, cluster-local and scattered station-set
// routing, the sparse-FCG replay path, quantized sharded parity, and
// hot-swap under load with zero torn (mixed-version) responses. Runs under
// TSAN in CI.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/graph_generator.h"
#include "data/window.h"
#include "graph/partition.h"
#include "gtest/gtest.h"
#include "serve/feature_ring.h"
#include "serve/model_registry.h"
#include "serve/prediction_service.h"
#include "serve/shard_engine.h"
#include "serve/shard_router.h"
#include "tensor/csr.h"

namespace stgnn::serve {
namespace {

using tensor::Tensor;

// Deterministic dataset with district-local structure: `districts` blocks
// of `per_district` stations, flows heavier inside a block than across.
data::FlowDataset MakeFlow(int districts, int per_district,
                           int slots_per_day = 6, int days = 4) {
  const int n = districts * per_district;
  data::FlowDataset flow;
  flow.city_name = "shard-test";
  flow.num_stations = n;
  flow.slots_per_day = slots_per_day;
  flow.num_slots = slots_per_day * days;
  common::Rng rng(1234);
  flow.demand = Tensor({flow.num_slots, n});
  flow.supply = Tensor({flow.num_slots, n});
  for (int t = 0; t < flow.num_slots; ++t) {
    Tensor in({n, n});
    Tensor out({n, n});
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        const bool local = i / per_district == j / per_district;
        const int cap = local ? 4 : 2;
        in.at(i, j) = static_cast<float>(rng.UniformInt(cap));
        out.at(i, j) = static_cast<float>(rng.UniformInt(cap));
      }
    }
    for (int i = 0; i < n; ++i) {
      float demand = 0.0f;
      float supply = 0.0f;
      for (int j = 0; j < n; ++j) {
        demand += out.at(i, j);
        supply += in.at(i, j);
      }
      flow.demand.at(t, i) = demand;
      flow.supply.at(t, i) = supply;
    }
    flow.inflow.push_back(std::move(in));
    flow.outflow.push_back(std::move(out));
  }
  flow.train_end = slots_per_day * (days - 2);
  flow.val_end = slots_per_day * (days - 1);
  flow.max_train_flow = 3.0f;
  return flow;
}

core::StgnnConfig TestConfig() {
  core::StgnnConfig config;
  config.short_term_slots = 3;
  config.long_term_days = 1;
  config.fcg_layers = 2;
  config.pcg_layers = 2;
  config.attention_heads = 2;
  config.dropout = 0.0f;
  config.horizon = 1;
  config.seed = 5;
  config.serve_cache = true;
  return config;
}

std::shared_ptr<const core::StgnnDjdModel> MakeModel(
    int n, const core::StgnnConfig& config, uint64_t seed) {
  common::Rng rng(seed);
  return std::make_shared<const core::StgnnDjdModel>(n, config, &rng);
}

void ExpectBitEqual(const Tensor& got, const Tensor& want) {
  ASSERT_EQ(got.shape(), want.shape());
  for (int64_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(got.flat(i), want.flat(i)) << "element " << i;
  }
}

// -- Partitioner ------------------------------------------------------------

TEST(PartitionTest, KeepsDistrictsWholeAndBalances) {
  const graph::Partition p = graph::PartitionStations(4, 2, 2);
  EXPECT_EQ(p.num_stations, 8);
  EXPECT_EQ(p.num_shards, 2);
  // Greedy lightest-shard, ties to the lowest id: d0->s0, d1->s1, d2->s0,
  // d3->s1.
  EXPECT_EQ(p.owned[0], (std::vector<int>{0, 1, 4, 5}));
  EXPECT_EQ(p.owned[1], (std::vector<int>{2, 3, 6, 7}));
  for (int d = 0; d < 4; ++d) {
    // District integrity: one owner per district block.
    EXPECT_EQ(p.owner[2 * d], p.owner[2 * d + 1]) << "district " << d;
  }
}

TEST(PartitionTest, DeterministicAndDegenerate) {
  const graph::Partition a = graph::PartitionStations(5, 3, 3);
  const graph::Partition b = graph::PartitionStations(5, 3, 3);
  EXPECT_EQ(a.owner, b.owner);

  // K=1: everything on shard 0.
  const graph::Partition one = graph::PartitionStations(4, 2, 1);
  EXPECT_EQ(one.num_shards, 1);
  EXPECT_EQ(static_cast<int>(one.owned[0].size()), 8);

  // K clamps to the district count — a shard can't own half a cluster.
  const graph::Partition clamped = graph::PartitionStations(3, 2, 8);
  EXPECT_EQ(clamped.num_shards, 3);
  for (const auto& owned : clamped.owned) {
    EXPECT_EQ(static_cast<int>(owned.size()), 2);
  }
}

// -- Halo counting ----------------------------------------------------------

TEST(HaloRowsTest, EmptyCutAndBoundaryAndDegenerate) {
  // Block-diagonal adjacency, owner matching the blocks: empty cut.
  const int n = 4;
  Tensor block({n, n});
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      block.at(i, j) = (i / 2 == j / 2) ? 1.0f : 0.0f;
    }
  }
  const tensor::Csr diag = tensor::Csr::FromDense(block);
  const std::vector<int> owner{0, 0, 1, 1};
  EXPECT_EQ(core::CountHaloRows(diag, owner, 0), 0);
  EXPECT_EQ(core::CountHaloRows(diag, owner, 1), 0);

  // One boundary station: station 1 also reads station 2 (remote).
  block.at(1, 2) = 1.0f;
  const tensor::Csr cut = tensor::Csr::FromDense(block);
  EXPECT_EQ(core::CountHaloRows(cut, owner, 0), 1);
  EXPECT_EQ(core::CountHaloRows(cut, owner, 1), 0);

  // The same remote neighbour reached from two rows counts once.
  block.at(0, 2) = 1.0f;
  const tensor::Csr dedup = tensor::Csr::FromDense(block);
  EXPECT_EQ(core::CountHaloRows(dedup, owner, 0), 1);

  // K=1 degenerate: no remote stations at all.
  const std::vector<int> all_zero(n, 0);
  EXPECT_EQ(core::CountHaloRows(dedup, all_zero, 0), 0);
}

// -- Sharded serving --------------------------------------------------------

// Side-by-side harness: an unsharded reference service and a K-shard fleet
// behind a router, fed the identical ingest stream and model.
struct ShardHarness {
  ShardHarness(int num_shards, int service_workers,
               core::StgnnConfig config_in, int districts = 4,
               int per_district = 2)
      : flow(MakeFlow(districts, per_district)),
        config(config_in),
        scale(1.0f / flow.max_train_flow),
        normalizer(data::MinMaxNormalizer::Fit(flow.demand, flow.supply,
                                               flow.train_end)),
        partition(
            graph::PartitionStations(districts, per_district, num_shards)),
        ring(flow.num_stations, config.short_term_slots, config.long_term_days,
             flow.slots_per_day, scale),
        model(MakeModel(flow.num_stations, config, 7)),
        reference(&registry, &ring,
                  {.num_workers = service_workers, .max_batch = 4,
                   .max_queue = 64}),
        fleet(partition, config.short_term_slots, config.long_term_days,
              flow.slots_per_day, scale,
              {.service = {.num_workers = service_workers, .max_batch = 4,
                           .max_queue = 64}}),
        router(&fleet, {.num_workers = 2, .max_queue = 64}) {
    const int frontier = ring.first_predictable_slot() + 2;
    for (int t = 0; t < frontier; ++t) PushBoth(t);
  }

  void PushBoth(int t) {
    ASSERT_TRUE(ring.Push(t, flow.inflow[t], flow.outflow[t]).ok());
    ASSERT_TRUE(fleet.Push(t, flow.inflow[t], flow.outflow[t]).ok());
  }

  uint64_t PublishBoth(ModelSnapshot snapshot) {
    const uint64_t v1 = registry.Publish(snapshot);
    const uint64_t v2 = fleet.Publish(snapshot);
    EXPECT_EQ(v1, v2);
    return v2;
  }
  uint64_t PublishBoth() {
    return PublishBoth(ModelSnapshot(model, normalizer, scale, config));
  }

  void StartBoth() {
    reference.Start();
    fleet.Start();
    router.Start();
  }

  data::FlowDataset flow;
  core::StgnnConfig config;
  float scale;
  data::MinMaxNormalizer normalizer;
  graph::Partition partition;
  ModelRegistry registry;
  FeatureRing ring;
  std::shared_ptr<const core::StgnnDjdModel> model;
  PredictionService reference;
  ShardFleet fleet;
  ShardRouter router;
};

// Full-city queries at every frontier across three ring wraparounds, at
// 1/2/4 shards and 1/2/7 per-shard workers: the router's merged response
// must be bitwise equal to the unsharded service's.
TEST(ShardServingTest, ShardedVsUnshardedBitwiseParity) {
  for (int shards : {1, 2, 4}) {
    for (int workers : {1, 2, 7}) {
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " workers=" + std::to_string(workers));
      ShardHarness h(shards, workers, TestConfig());
      h.PublishBoth();
      h.StartBoth();
      for (int t = h.ring.next_slot(); t < h.flow.num_slots; ++t) {
        PredictResponse want = h.reference.Predict({});
        ASSERT_TRUE(want.ok()) << want.status.ToString();
        for (int rep = 0; rep < 2; ++rep) {
          PredictResponse got = h.router.Predict({});
          ASSERT_TRUE(got.ok()) << got.status.ToString();
          EXPECT_EQ(got.slot, want.slot);
          EXPECT_EQ(got.model_version, want.model_version);
          ExpectBitEqual(got.predictions, want.predictions);
        }
        h.PushBoth(t);
      }
      const RouterStats stats = h.router.stats();
      EXPECT_EQ(stats.failed, 0);
      EXPECT_GT(stats.merges, 0);
    }
  }
}

// Station-set routing: a cluster-local query fans to exactly one shard, a
// scattered query to several; both return rows in request-station order,
// bitwise equal to the matching unsharded rows.
TEST(ShardServingTest, StationSubsetsRouteAndMergeInRequestOrder) {
  ShardHarness h(/*num_shards=*/2, /*service_workers=*/2, TestConfig());
  h.PublishBoth();
  h.StartBoth();

  // Cluster-local: district 0 lives wholly on one shard.
  const std::vector<int> local{0, 1};
  // Scattered, deliberately out of ascending order and cross-shard.
  const std::vector<int> scattered{7, 0, 5, 2};
  for (const std::vector<int>& stations : {local, scattered}) {
    PredictRequest request;
    request.stations = stations;
    PredictResponse want = h.reference.Predict(request);
    PredictResponse got = h.router.Predict(request);
    ASSERT_TRUE(want.ok()) << want.status.ToString();
    ASSERT_TRUE(got.ok()) << got.status.ToString();
    ExpectBitEqual(got.predictions, want.predictions);
  }
  // The local query fanned to one shard; the scattered one to both.
  const RouterStats stats = h.router.stats();
  EXPECT_EQ(stats.fanouts, 2);

  // Out-of-range stations fail typed at the router, before any fan-out.
  PredictRequest bad;
  bad.stations = {99};
  PredictResponse rejected = h.router.Predict(bad);
  EXPECT_EQ(rejected.kind, PredictResponse::Kind::kFailed);
  EXPECT_EQ(h.router.stats().fanouts, stats.fanouts);
}

// The sparse-FCG replay plan (closure walk + SpMM) must stay bitwise equal
// to the unsharded branch, which dispatches sparse below the same density
// threshold.
TEST(ShardServingTest, SparseFcgReplayParity) {
  core::StgnnConfig config = TestConfig();
  config.sparse_density_threshold = 1.0f;  // always dispatch sparse
  ShardHarness h(/*num_shards=*/2, /*service_workers=*/1, config);
  h.PublishBoth();
  h.StartBoth();
  for (int rep = 0; rep < 3; ++rep) {
    PredictResponse want = h.reference.Predict({});
    PredictResponse got = h.router.Predict({});
    ASSERT_TRUE(want.ok()) << want.status.ToString();
    ASSERT_TRUE(got.ok()) << got.status.ToString();
    ExpectBitEqual(got.predictions, want.predictions);
  }
}

// Quantized snapshots shard bitwise too: the int8 dispatch keys on the
// B-operand parameter identity, which the sharded forward preserves by
// construction, and activation quantisation is per-row.
TEST(ShardServingTest, QuantizedShardedParity) {
  core::StgnnConfig config = TestConfig();
  ShardHarness h(/*num_shards=*/2, /*service_workers=*/1, config);
  ModelSnapshot snapshot(h.model, h.normalizer, h.scale, h.config);
  QuantizeSnapshot(&snapshot, tensor::Precision::kInt8);
  ASSERT_NE(snapshot.quantized, nullptr);
  h.PublishBoth(snapshot);
  h.StartBoth();
  PredictResponse want = h.reference.Predict({});
  PredictResponse got = h.router.Predict({});
  ASSERT_TRUE(want.ok()) << want.status.ToString();
  ASSERT_TRUE(got.ok()) << got.status.ToString();
  ExpectBitEqual(got.predictions, want.predictions);
}

// Ablated configs can't shard; the router surfaces the shard engine's typed
// refusal instead of wedging.
TEST(ShardServingTest, NonShardableConfigFailsTyped) {
  core::StgnnConfig config = TestConfig();
  config.ablation.use_fcg = false;
  ShardHarness h(/*num_shards=*/2, /*service_workers=*/1, config);
  h.fleet.Publish(
      ModelSnapshot(h.model, h.normalizer, h.scale, config));
  h.fleet.Start();
  h.router.Start();
  PredictResponse response = h.router.Predict({});
  EXPECT_EQ(response.kind, PredictResponse::Kind::kFailed);
  EXPECT_NE(response.status.message().find("sharded serving requires"),
            std::string::npos)
      << response.status.ToString();
}

// Hot-swap under concurrent load: every served response must be wholly one
// version's rows — bitwise equal to that version's direct forward — and the
// router must never merge a torn mix (enforced by version checks + retry).
TEST(ShardServingTest, HotSwapUnderLoadNeverTearsVersions) {
  ShardHarness h(/*num_shards=*/2, /*service_workers=*/2, TestConfig());
  std::vector<std::shared_ptr<const core::StgnnDjdModel>> models;
  const int kVersions = 4;
  for (int v = 0; v < kVersions; ++v) {
    models.push_back(MakeModel(h.flow.num_stations, h.config, 100 + v));
  }
  const int frontier = h.ring.next_slot();
  // Per-version expected full-city rows at the fixed frontier.
  std::vector<Tensor> expected;
  const data::StHistory history = data::BuildStHistory(
      h.flow, frontier, h.config.short_term_slots, h.config.long_term_days,
      h.scale);
  for (const auto& m : models) {
    const autograd::Variable out =
        m->Forward(history, /*training=*/false, nullptr);
    expected.push_back(tensor::Relu(h.normalizer.Denormalize(out.value())));
  }

  h.fleet.Publish(ModelSnapshot(models[0], h.normalizer, h.scale, h.config));
  h.fleet.Start();
  h.router.Start();

  std::atomic<bool> done{false};
  std::atomic<int> served{0};
  std::vector<std::thread> clients;
  std::atomic<bool> torn{false};
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&] {
      while (!done.load()) {
        PredictResponse response = h.router.Predict({});
        if (!response.ok()) continue;  // version race mid-swap: retried out
        const int v = static_cast<int>(response.model_version) - 1;
        ASSERT_GE(v, 0);
        ASSERT_LT(v, kVersions);
        const Tensor& want = expected[v];
        ASSERT_EQ(response.predictions.shape(), want.shape());
        for (int64_t i = 0; i < want.size(); ++i) {
          if (response.predictions.flat(i) != want.flat(i)) {
            torn.store(true);
            return;
          }
        }
        served.fetch_add(1);
      }
    });
  }
  for (int v = 1; v < kVersions; ++v) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    h.fleet.Publish(ModelSnapshot(models[v], h.normalizer, h.scale, h.config));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  done.store(true);
  for (auto& c : clients) c.join();
  EXPECT_FALSE(torn.load()) << "a response mixed rows from two versions";
  EXPECT_GT(served.load(), 0);
  EXPECT_EQ(h.router.stats().failed, 0);
}

}  // namespace
}  // namespace stgnn::serve
