// End-to-end integration tests: simulate a city, build the flow dataset,
// train STGNN-DJD and representative baselines, and check the relationships
// the paper's evaluation depends on (finite errors, STGNN-DJD competitive
// with weak temporal baselines, reproducibility across the whole pipeline).

#include <cmath>

#include "baselines/ha.h"
#include "baselines/mlp_model.h"
#include "core/stgnn_djd.h"
#include "data/city_simulator.h"
#include "data/flow_dataset.h"
#include "eval/experiment.h"
#include "gtest/gtest.h"

namespace stgnn {
namespace {

using core::StgnnConfig;
using core::StgnnDjdPredictor;
using tensor::Tensor;

data::FlowDataset MakeCity(uint64_t seed) {
  data::CityConfig config = data::CityConfig::Tiny();
  config.num_days = 18;
  config.seed = seed;
  data::TripDataset trips = data::CitySimulator(config).Generate();
  EXPECT_EQ(data::CleanseTrips(&trips), 0);  // simulator emits clean data
  return data::BuildFlowDataset(trips);
}

StgnnConfig SmallConfig() {
  StgnnConfig config;
  config.short_term_slots = 12;
  config.long_term_days = 3;
  config.fcg_layers = 2;
  config.pcg_layers = 2;
  config.attention_heads = 2;
  config.epochs = 4;
  config.batch_size = 16;
  config.max_samples_per_epoch = 96;
  return config;
}

TEST(IntegrationTest, FullPipelineProducesSaneMetrics) {
  const data::FlowDataset flow = MakeCity(555);
  StgnnDjdPredictor model(SmallConfig());
  model.Train(flow);
  eval::EvalWindow window;
  window.min_history = model.MinHistorySlots(flow);
  const eval::Metrics m = eval::EvaluateOnTestSplit(&model, flow, window);
  EXPECT_GT(m.count, 0);
  EXPECT_TRUE(std::isfinite(m.rmse));
  EXPECT_TRUE(std::isfinite(m.mae));
  EXPECT_GE(m.rmse, m.mae);
  // Demand at tiny-city stations is small; a sane model should not be wildly
  // off (HA-level error on this data is ~1-2 bikes).
  EXPECT_LT(m.rmse, 10.0);
}

TEST(IntegrationTest, StgnnCompetitiveWithHistoricalAverage) {
  const data::FlowDataset flow = MakeCity(777);
  eval::EvalWindow window;

  baselines::HistoricalAverage ha;
  ha.Train(flow);
  StgnnDjdPredictor stgnn(SmallConfig());
  stgnn.Train(flow);
  window.min_history = stgnn.MinHistorySlots(flow);

  const eval::Metrics ha_metrics =
      eval::EvaluateOnTestSplit(&ha, flow, window);
  const eval::Metrics stgnn_metrics =
      eval::EvaluateOnTestSplit(&stgnn, flow, window);
  // With a tiny training budget the learned model should still land within
  // 1.75x of HA (the paper's full-budget result is far better than HA).
  EXPECT_LT(stgnn_metrics.rmse, ha_metrics.rmse * 1.75)
      << "STGNN " << stgnn_metrics.rmse << " vs HA " << ha_metrics.rmse;
}

TEST(IntegrationTest, WholePipelineDeterministic) {
  const data::FlowDataset flow_a = MakeCity(999);
  const data::FlowDataset flow_b = MakeCity(999);
  ASSERT_EQ(flow_a.num_slots, flow_b.num_slots);
  EXPECT_TRUE(flow_a.demand.AllClose(flow_b.demand));

  StgnnConfig config = SmallConfig();
  config.epochs = 1;
  config.max_samples_per_epoch = 32;
  StgnnDjdPredictor a(config);
  StgnnDjdPredictor b(config);
  a.Train(flow_a);
  b.Train(flow_b);
  const int t = std::max(flow_a.val_end, a.MinHistorySlots(flow_a));
  EXPECT_TRUE(a.Predict(flow_a, t).AllClose(b.Predict(flow_b, t), 1e-5f));
}

TEST(IntegrationTest, SeedStatsAcrossSeedsHaveSpread) {
  const data::FlowDataset flow = MakeCity(1234);
  StgnnConfig config = SmallConfig();
  config.epochs = 1;
  config.max_samples_per_epoch = 32;
  const auto factory = [&config](uint64_t seed) {
    StgnnConfig c = config;
    c.seed = seed;
    return std::make_unique<StgnnDjdPredictor>(c);
  };
  eval::EvalWindow window;
  window.min_history =
      flow.FirstPredictableSlot(config.short_term_slots, config.long_term_days);
  const std::vector<eval::Metrics> runs =
      eval::RunSeeds(factory, flow, window, 2);
  const eval::SeedStats stats = eval::Summarize(runs);
  EXPECT_EQ(stats.num_runs, 2);
  EXPECT_GT(stats.mean_rmse, 0.0);
  // Different seeds give (slightly) different models.
  EXPECT_GT(stats.std_rmse, 0.0);
}

TEST(IntegrationTest, MlpBaselineTrainsOnSameData) {
  const data::FlowDataset flow = MakeCity(31);
  baselines::NeuralTrainOptions options;
  options.epochs = 2;
  options.max_samples_per_epoch = 64;
  baselines::MlpModel mlp(options, 4, 2);
  mlp.Train(flow);
  eval::EvalWindow window;
  window.min_history = mlp.MinHistorySlots(flow);
  const eval::Metrics m = eval::EvaluateOnTestSplit(&mlp, flow, window);
  EXPECT_TRUE(std::isfinite(m.rmse));
  EXPECT_GT(m.count, 0);
}

}  // namespace
}  // namespace stgnn
