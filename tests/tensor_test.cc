#include <cmath>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "tensor/tensor.h"

namespace stgnn::tensor {
namespace {

TEST(TensorTest, DefaultIsScalarZero) {
  Tensor t;
  EXPECT_EQ(t.ndim(), 0);
  EXPECT_EQ(t.size(), 1);
  EXPECT_FLOAT_EQ(t.item(), 0.0f);
}

TEST(TensorTest, ShapeAndSize) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.ndim(), 3);
  EXPECT_EQ(t.size(), 24);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(2), 4);
}

TEST(TensorTest, FactoryValues) {
  EXPECT_FLOAT_EQ(Tensor::Ones({2, 2}).at(1, 1), 1.0f);
  EXPECT_FLOAT_EQ(Tensor::Full({3}, 2.5f).at(2), 2.5f);
  EXPECT_FLOAT_EQ(Tensor::Scalar(9.0f).item(), 9.0f);
  Tensor eye = Tensor::Eye(3);
  EXPECT_FLOAT_EQ(eye.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(eye.at(0, 1), 0.0f);
  Tensor v = Tensor::FromVector({1, 2, 3});
  EXPECT_EQ(v.ndim(), 1);
  EXPECT_FLOAT_EQ(v.at(1), 2.0f);
}

TEST(TensorTest, RandomFactoriesRespectShapeAndRange) {
  common::Rng rng(3);
  Tensor u = Tensor::RandomUniform({50, 4}, -1.0f, 1.0f, &rng);
  EXPECT_EQ(u.size(), 200);
  for (float x : u.data()) {
    EXPECT_GE(x, -1.0f);
    EXPECT_LT(x, 1.0f);
  }
  Tensor g = Tensor::RandomNormal({1000}, 2.0f, 0.5f, &rng);
  double mean = 0.0;
  for (float x : g.data()) mean += x;
  EXPECT_NEAR(mean / 1000, 2.0, 0.1);
}

TEST(TensorTest, AtIndexing2d3d) {
  Tensor t({2, 3});
  t.at(1, 2) = 7.0f;
  EXPECT_FLOAT_EQ(t.flat(5), 7.0f);
  Tensor u({2, 2, 2});
  u.at(1, 0, 1) = 3.0f;
  EXPECT_FLOAT_EQ(u.flat(5), 3.0f);
}

TEST(TensorTest, ReshapeAndInfer) {
  Tensor t({2, 6});
  for (int i = 0; i < 12; ++i) t.flat(i) = static_cast<float>(i);
  Tensor r = t.Reshape({3, 4});
  EXPECT_FLOAT_EQ(r.at(2, 3), 11.0f);
  Tensor inferred = t.Reshape({-1, 3});
  EXPECT_EQ(inferred.dim(0), 4);
}

TEST(TensorTest, Transpose) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor tt = t.Transpose();
  EXPECT_EQ(tt.dim(0), 3);
  EXPECT_FLOAT_EQ(tt.at(2, 1), 6.0f);
  EXPECT_TRUE(tt.Transpose().AllClose(t));
}

TEST(TensorTest, SliceRowsRowCol) {
  Tensor t({4, 2}, {0, 1, 2, 3, 4, 5, 6, 7});
  Tensor mid = t.SliceRows(1, 3);
  EXPECT_EQ(mid.dim(0), 2);
  EXPECT_FLOAT_EQ(mid.at(0, 0), 2.0f);
  Tensor row = t.Row(2);
  EXPECT_FLOAT_EQ(row.at(0, 1), 5.0f);
  Tensor col = t.Col(1);
  EXPECT_EQ(col.dim(0), 4);
  EXPECT_FLOAT_EQ(col.at(3, 0), 7.0f);
}

TEST(TensorTest, AllClose) {
  Tensor a({2}, {1.0f, 2.0f});
  Tensor b({2}, {1.0f + 1e-7f, 2.0f});
  EXPECT_TRUE(a.AllClose(b));
  Tensor c({2}, {1.1f, 2.0f});
  EXPECT_FALSE(a.AllClose(c));
  Tensor d({1, 2}, {1.0f, 2.0f});
  EXPECT_FALSE(a.AllClose(d));  // shape mismatch
}

// --- Broadcasting ---

TEST(BroadcastTest, Shapes) {
  EXPECT_EQ(BroadcastShapes({2, 3}, {2, 3}), (Shape{2, 3}));
  EXPECT_EQ(BroadcastShapes({2, 1}, {1, 3}), (Shape{2, 3}));
  EXPECT_EQ(BroadcastShapes({3}, {2, 3}), (Shape{2, 3}));
  EXPECT_EQ(BroadcastShapes({}, {4, 5}), (Shape{4, 5}));
}

TEST(BroadcastTest, AddSameShape) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor b({2, 2}, {10, 20, 30, 40});
  EXPECT_TRUE(Add(a, b).AllClose(Tensor({2, 2}, {11, 22, 33, 44})));
}

TEST(BroadcastTest, AddRowVector) {
  Tensor a({2, 3}, {0, 0, 0, 1, 1, 1});
  Tensor row({1, 3}, {1, 2, 3});
  EXPECT_TRUE(Add(a, row).AllClose(Tensor({2, 3}, {1, 2, 3, 2, 3, 4})));
}

TEST(BroadcastTest, AddColVector) {
  Tensor a({2, 3}, {0, 0, 0, 0, 0, 0});
  Tensor col({2, 1}, {5, 7});
  EXPECT_TRUE(Add(a, col).AllClose(Tensor({2, 3}, {5, 5, 5, 7, 7, 7})));
}

TEST(BroadcastTest, OuterSum) {
  Tensor col({2, 1}, {1, 2});
  Tensor row({1, 2}, {10, 20});
  EXPECT_TRUE(Add(col, row).AllClose(Tensor({2, 2}, {11, 21, 12, 22})));
}

TEST(BroadcastTest, MulDivSubMaximum) {
  Tensor a({2, 2}, {2, 4, 6, 8});
  Tensor s = Tensor::Scalar(2.0f);
  EXPECT_TRUE(Mul(a, s).AllClose(Tensor({2, 2}, {4, 8, 12, 16})));
  EXPECT_TRUE(Div(a, s).AllClose(Tensor({2, 2}, {1, 2, 3, 4})));
  EXPECT_TRUE(Sub(a, a).AllClose(Tensor::Zeros({2, 2})));
  Tensor b({2, 2}, {3, 3, 3, 9});
  EXPECT_TRUE(Maximum(a, b).AllClose(Tensor({2, 2}, {3, 4, 6, 9})));
  EXPECT_TRUE(Minimum(a, b).AllClose(Tensor({2, 2}, {2, 3, 3, 8})));
}

// --- Unary ops ---

TEST(UnaryTest, Basics) {
  Tensor a({3}, {-1.0f, 0.0f, 2.0f});
  EXPECT_TRUE(Neg(a).AllClose(Tensor({3}, {1.0f, 0.0f, -2.0f})));
  EXPECT_TRUE(Relu(a).AllClose(Tensor({3}, {0.0f, 0.0f, 2.0f})));
  EXPECT_TRUE(Abs(a).AllClose(Tensor({3}, {1.0f, 0.0f, 2.0f})));
  EXPECT_TRUE(Square(a).AllClose(Tensor({3}, {1.0f, 0.0f, 4.0f})));
  EXPECT_NEAR(Exp(a).at(2), std::exp(2.0f), 1e-5);
  EXPECT_NEAR(Sigmoid(a).at(1), 0.5f, 1e-6);
  EXPECT_NEAR(Tanh(a).at(0), std::tanh(-1.0f), 1e-6);
}

TEST(UnaryTest, EluMatchesDefinition) {
  Tensor a({2}, {-2.0f, 3.0f});
  Tensor e = Elu(a);
  EXPECT_NEAR(e.at(0), std::exp(-2.0f) - 1.0f, 1e-6);
  EXPECT_FLOAT_EQ(e.at(1), 3.0f);
}

TEST(UnaryTest, ClampAndScalarOps) {
  Tensor a({3}, {-5.0f, 0.5f, 9.0f});
  EXPECT_TRUE(Clamp(a, 0.0f, 1.0f).AllClose(Tensor({3}, {0.0f, 0.5f, 1.0f})));
  EXPECT_TRUE(AddScalar(a, 1.0f).AllClose(Tensor({3}, {-4.0f, 1.5f, 10.0f})));
  EXPECT_TRUE(MulScalar(a, 2.0f).AllClose(Tensor({3}, {-10.0f, 1.0f, 18.0f})));
}

// --- MatMul ---

TEST(MatMulTest, KnownProduct) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_TRUE(c.AllClose(Tensor({2, 2}, {58, 64, 139, 154})));
}

TEST(MatMulTest, IdentityIsNoop) {
  common::Rng rng(5);
  Tensor a = Tensor::RandomNormal({4, 4}, 0.0f, 1.0f, &rng);
  EXPECT_TRUE(MatMul(a, Tensor::Eye(4)).AllClose(a));
  EXPECT_TRUE(MatMul(Tensor::Eye(4), a).AllClose(a));
}

TEST(MatMulTest, AssociativeWithTranspose) {
  common::Rng rng(6);
  Tensor a = Tensor::RandomNormal({3, 5}, 0.0f, 1.0f, &rng);
  Tensor b = Tensor::RandomNormal({5, 2}, 0.0f, 1.0f, &rng);
  // (A B)^T == B^T A^T
  EXPECT_TRUE(MatMul(a, b).Transpose().AllClose(
      MatMul(b.Transpose(), a.Transpose()), 1e-4f));
}

// --- Reductions ---

TEST(ReduceTest, SumMeanMinMax) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_FLOAT_EQ(SumAll(a).item(), 21.0f);
  EXPECT_FLOAT_EQ(MeanAll(a).item(), 3.5f);
  EXPECT_FLOAT_EQ(MaxAll(a), 6.0f);
  EXPECT_FLOAT_EQ(MinAll(a), 1.0f);
}

TEST(ReduceTest, AxisReductions) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_TRUE(SumAxis(a, 0).AllClose(Tensor({3}, {5, 7, 9})));
  EXPECT_TRUE(SumAxis(a, 1).AllClose(Tensor({2}, {6, 15})));
  EXPECT_TRUE(SumAxis(a, 1, true).AllClose(Tensor({2, 1}, {6, 15})));
  EXPECT_TRUE(MeanAxis(a, 0).AllClose(Tensor({3}, {2.5f, 3.5f, 4.5f})));
  EXPECT_TRUE(MaxAxis(a, 1).AllClose(Tensor({2}, {3, 6})));
}

TEST(SoftmaxTest, RowsSumToOne) {
  Tensor a({2, 3}, {1, 2, 3, -1, 0, 1});
  Tensor s = RowSoftmax(a);
  for (int i = 0; i < 2; ++i) {
    float total = 0.0f;
    for (int j = 0; j < 3; ++j) {
      EXPECT_GT(s.at(i, j), 0.0f);
      total += s.at(i, j);
    }
    EXPECT_NEAR(total, 1.0f, 1e-5);
  }
  // Monotone in the logits.
  EXPECT_LT(s.at(0, 0), s.at(0, 2));
}

TEST(SoftmaxTest, NumericallyStableWithLargeLogits) {
  Tensor a({1, 3}, {1000.0f, 1000.0f, 1000.0f});
  Tensor s = RowSoftmax(a);
  for (int j = 0; j < 3; ++j) EXPECT_NEAR(s.at(0, j), 1.0f / 3.0f, 1e-5);
}

TEST(SoftmaxTest, ShiftInvariance) {
  Tensor a({1, 4}, {0.1f, -0.5f, 2.0f, 1.0f});
  Tensor shifted = AddScalar(a, 100.0f);
  EXPECT_TRUE(RowSoftmax(a).AllClose(RowSoftmax(shifted), 1e-4f));
}

// --- Concat / Stack ---

TEST(ConcatTest, Rows) {
  Tensor a({1, 2}, {1, 2});
  Tensor b({2, 2}, {3, 4, 5, 6});
  Tensor c = Concat({a, b}, 0);
  EXPECT_TRUE(c.AllClose(Tensor({3, 2}, {1, 2, 3, 4, 5, 6})));
}

TEST(ConcatTest, Cols) {
  Tensor a({2, 1}, {1, 2});
  Tensor b({2, 2}, {3, 4, 5, 6});
  Tensor c = Concat({a, b}, 1);
  EXPECT_TRUE(c.AllClose(Tensor({2, 3}, {1, 3, 4, 2, 5, 6})));
}

TEST(StackTest, AddsLeadingAxis) {
  Tensor a({2}, {1, 2});
  Tensor b({2}, {3, 4});
  Tensor s = Stack({a, b});
  EXPECT_EQ(s.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(s.at(1, 0), 3.0f);
}

// --- Parameterized property sweep: broadcasting matches manual loops ---

class BroadcastSweep
    : public ::testing::TestWithParam<std::tuple<Shape, Shape>> {};

TEST_P(BroadcastSweep, AddMatchesManual) {
  const auto& [sa, sb] = GetParam();
  common::Rng rng(99);
  Tensor a = Tensor::RandomNormal(sa, 0.0f, 1.0f, &rng);
  Tensor b = Tensor::RandomNormal(sb, 0.0f, 1.0f, &rng);
  Tensor c = Add(a, b);
  const Shape expected = BroadcastShapes(sa, sb);
  ASSERT_EQ(c.shape(), expected);
  // Verify against the symmetric computation.
  EXPECT_TRUE(c.AllClose(Add(b, a)));
  // a + b - b == broadcast of a.
  Tensor back = Sub(c, b);
  Tensor a_broadcast = Add(a, Tensor::Zeros(expected));
  EXPECT_TRUE(back.AllClose(a_broadcast, 1e-4f));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BroadcastSweep,
    ::testing::Values(std::make_tuple(Shape{3, 4}, Shape{3, 4}),
                      std::make_tuple(Shape{3, 1}, Shape{1, 4}),
                      std::make_tuple(Shape{4}, Shape{3, 4}),
                      std::make_tuple(Shape{2, 3, 4}, Shape{3, 4}),
                      std::make_tuple(Shape{2, 1, 4}, Shape{1, 3, 1}),
                      std::make_tuple(Shape{1}, Shape{5})));

// Matmul distributivity as a randomized property.
class MatMulSweep : public ::testing::TestWithParam<int> {};

TEST_P(MatMulSweep, DistributesOverAddition) {
  const int n = GetParam();
  common::Rng rng(n);
  Tensor a = Tensor::RandomNormal({n, n}, 0.0f, 1.0f, &rng);
  Tensor b = Tensor::RandomNormal({n, n}, 0.0f, 1.0f, &rng);
  Tensor c = Tensor::RandomNormal({n, n}, 0.0f, 1.0f, &rng);
  Tensor lhs = MatMul(a, Add(b, c));
  Tensor rhs = Add(MatMul(a, b), MatMul(a, c));
  EXPECT_TRUE(lhs.AllClose(rhs, 1e-3f));
}

INSTANTIATE_TEST_SUITE_P(Sizes, MatMulSweep, ::testing::Values(1, 2, 5, 16));

}  // namespace
}  // namespace stgnn::tensor
