// Serving runtime battery: feature-ring assembly parity and wraparound,
// typed insufficient-history errors, latency histogram, model registry
// hot-swap (including the checkpoint path), micro-batched serving that is
// bit-identical to a direct StgnnDjdModel::Forward at 1/2/7 workers,
// hot-swap under load with zero dropped or torn requests, and the
// admission-control / deadline shedding semantics. Runs under TSAN in CI.

#include <atomic>
#include <cstdint>
#include <future>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/trace.h"
#include "data/window.h"
#include "gtest/gtest.h"
#include "nn/serialize.h"
#include "serve/feature_ring.h"
#include "serve/histogram.h"
#include "serve/model_registry.h"
#include "serve/prediction_service.h"

namespace stgnn::serve {
namespace {

using tensor::Tensor;

// A small deterministic flow dataset: integer-count flow matrices with the
// demand/supply row sums the paper defines. Big enough to exercise the
// model, small enough for TSAN.
data::FlowDataset MakeFlow(int n = 8, int slots_per_day = 6, int days = 4) {
  data::FlowDataset flow;
  flow.city_name = "serve-test";
  flow.num_stations = n;
  flow.slots_per_day = slots_per_day;
  flow.num_slots = slots_per_day * days;
  common::Rng rng(99);
  flow.demand = Tensor({flow.num_slots, n});
  flow.supply = Tensor({flow.num_slots, n});
  for (int t = 0; t < flow.num_slots; ++t) {
    Tensor in({n, n});
    Tensor out({n, n});
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        in.at(i, j) = static_cast<float>(rng.UniformInt(4));
        out.at(i, j) = static_cast<float>(rng.UniformInt(4));
      }
    }
    for (int i = 0; i < n; ++i) {
      float demand = 0.0f;
      float supply = 0.0f;
      for (int j = 0; j < n; ++j) {
        demand += out.at(i, j);
        supply += in.at(i, j);
      }
      flow.demand.at(t, i) = demand;
      flow.supply.at(t, i) = supply;
    }
    flow.inflow.push_back(std::move(in));
    flow.outflow.push_back(std::move(out));
  }
  flow.train_end = slots_per_day * (days - 2);
  flow.val_end = slots_per_day * (days - 1);
  flow.max_train_flow = 3.0f;
  return flow;
}

core::StgnnConfig TestConfig(int k = 3, int d = 1) {
  core::StgnnConfig config;
  config.short_term_slots = k;
  config.long_term_days = d;
  config.fcg_layers = 1;
  config.pcg_layers = 1;
  config.attention_heads = 2;
  config.dropout = 0.0f;
  config.horizon = 1;
  config.seed = 5;
  return config;
}

std::shared_ptr<const core::StgnnDjdModel> MakeModel(
    int n, const core::StgnnConfig& config, uint64_t seed) {
  common::Rng rng(seed);
  return std::make_shared<const core::StgnnDjdModel>(n, config, &rng);
}

// The direct (non-serving) prediction path: Forward -> Denormalize -> Relu,
// exactly like StgnnDjdPredictor::PredictHorizon.
Tensor DirectPrediction(const core::StgnnDjdModel& model,
                        const data::MinMaxNormalizer& normalizer,
                        const data::StHistory& history) {
  const autograd::Variable out =
      model.Forward(history, /*training=*/false, nullptr);
  return tensor::Relu(normalizer.Denormalize(out.value()));
}

void FillRing(FeatureRing* ring, const data::FlowDataset& flow, int upto) {
  for (int t = ring->next_slot(); t < upto; ++t) {
    ASSERT_TRUE(ring->Push(t, flow.inflow[t], flow.outflow[t]).ok());
  }
}

void ExpectBitEqual(const Tensor& got, const Tensor& want) {
  ASSERT_EQ(got.shape(), want.shape());
  for (int64_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(got.flat(i), want.flat(i)) << "element " << i;
  }
}

// --- FeatureRing -----------------------------------------------------------

TEST(FeatureRingTest, MatchesBuildStHistoryAcrossWraparound) {
  const data::FlowDataset flow = MakeFlow();
  const int k = 3;
  const int d = 1;
  const float scale = 0.5f;
  FeatureRing ring(flow.num_stations, k, d, flow.slots_per_day, scale);
  // window = max(3, 6) = 6, capacity 8; pushing all 24 slots wraps the
  // storage three times. At every frontier the assembled history must be
  // bit-identical to the offline BuildStHistory.
  ASSERT_EQ(ring.capacity(), 8);
  for (int t = 0; t < flow.num_slots; ++t) {
    if (t >= ring.first_predictable_slot()) {
      ASSERT_TRUE(ring.ReadyFor(t));
      const Result<data::StHistory> assembled = ring.History(t);
      ASSERT_TRUE(assembled.ok()) << assembled.status().ToString();
      const data::StHistory direct =
          data::BuildStHistory(flow, t, k, d, scale);
      ExpectBitEqual((*assembled).inflow_short, direct.inflow_short);
      ExpectBitEqual((*assembled).outflow_short, direct.outflow_short);
      ExpectBitEqual((*assembled).inflow_long, direct.inflow_long);
      ExpectBitEqual((*assembled).outflow_long, direct.outflow_long);
    }
    ASSERT_TRUE(ring.Push(t, flow.inflow[t], flow.outflow[t]).ok());
  }
}

TEST(FeatureRingTest, TypedErrors) {
  const data::FlowDataset flow = MakeFlow();
  FeatureRing ring(flow.num_stations, 3, 1, flow.slots_per_day, 1.0f);
  FillRing(&ring, flow, flow.num_slots);
  const int frontier = ring.next_slot();

  // Insufficient history is a typed error, not an abort or a clamp.
  EXPECT_EQ(ring.History(ring.first_predictable_slot() - 1).status().code(),
            StatusCode::kFailedPrecondition);
  // Beyond the ingest frontier: the history does not exist yet.
  EXPECT_EQ(ring.History(frontier + 1).status().code(),
            StatusCode::kOutOfRange);
  // Far enough behind the frontier that the ring overwrote its context.
  const Status overwritten = ring.History(frontier - 5).status();
  EXPECT_EQ(overwritten.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(overwritten.message().find("overwritten"), std::string::npos);
  // Out-of-order ingest and shape mismatches are rejected.
  EXPECT_EQ(ring.Push(frontier + 2, flow.inflow[0], flow.outflow[0]).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ring.Push(frontier, Tensor({2, 2}), Tensor({2, 2})).code(),
            StatusCode::kInvalidArgument);
}

TEST(FeatureRingTest, RePushOfIngestedOrOverwrittenSlotFailsTyped) {
  const data::FlowDataset flow = MakeFlow();
  FeatureRing ring(flow.num_stations, 3, 1, flow.slots_per_day, 1.0f);
  FillRing(&ring, flow, flow.num_slots);
  const int frontier = ring.next_slot();

  // A still-retained slot: re-ingesting would rewrite live served history.
  const Status live = ring.Push(frontier - 1, flow.inflow[0], flow.outflow[0]);
  EXPECT_EQ(live.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(live.message().find("already ingested"), std::string::npos);
  // A slot the ring already overwrote fails the same way, flagged as such.
  const Status old = ring.Push(0, flow.inflow[0], flow.outflow[0]);
  EXPECT_EQ(old.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(old.message().find("overwritten"), std::string::npos);
  // Neither failure perturbed the ring: the frontier still serves.
  EXPECT_TRUE(ring.History(frontier).ok());
  EXPECT_EQ(ring.next_slot(), frontier);
}

TEST(FeatureRingTest, HistoryStraddlingInFlightIngestFailsTyped) {
  const data::FlowDataset flow = MakeFlow();
  FeatureRing ring(flow.num_stations, 3, 1, flow.slots_per_day, 1.0f);
  FillRing(&ring, flow, flow.num_slots);  // full: retains [16, 24), cap 8
  const int frontier = ring.next_slot();  // 24

  // The pause hook runs between the ingest reserve and the row copy, on
  // this thread with no lock held: Push(24) is mid-overwrite of the cell
  // holding slot 16 (= 24 - capacity). A window needing slot 16 must fail
  // typed; windows that don't still assemble during the in-flight copy.
  bool hook_ran = false;
  ring.SetIngestPauseForTest([&] {
    hook_ran = true;
    const Status straddle = ring.History(frontier - 2).status();  // 16..21
    EXPECT_EQ(straddle.code(), StatusCode::kFailedPrecondition);
    EXPECT_NE(straddle.message().find("in-flight"), std::string::npos);
    EXPECT_TRUE(ring.History(frontier - 1).ok());  // needs 17..22
    EXPECT_TRUE(ring.History(frontier).ok());      // needs 18..23
  });
  ASSERT_TRUE(ring.Push(frontier, flow.inflow[0], flow.outflow[0]).ok());
  ring.SetIngestPauseForTest(nullptr);
  EXPECT_TRUE(hook_ran);

  // After the commit the same request fails typed as overwritten.
  const Status after = ring.History(frontier - 2).status();
  EXPECT_EQ(after.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(after.message().find("overwritten"), std::string::npos);
  EXPECT_TRUE(ring.History(frontier + 1).ok());
}

TEST(FeatureRingTest, SnapshotWindowCopiesExactScaledRowsOrFailsTyped) {
  const data::FlowDataset flow = MakeFlow();
  const float scale = 0.5f;
  FeatureRing ring(flow.num_stations, 3, 1, flow.slots_per_day, scale);
  FillRing(&ring, flow, flow.num_slots);
  const int frontier = ring.next_slot();          // 24
  const int oldest = frontier - ring.capacity();  // 16: retains [16, 24)

  // A retained range copies out exactly the pre-scaled stored rows.
  const Result<SlotWindow> window = ring.SnapshotWindow(oldest, frontier - 1);
  ASSERT_TRUE(window.ok()) << window.status().ToString();
  EXPECT_EQ((*window).first, oldest);
  EXPECT_EQ((*window).count(), ring.capacity());
  EXPECT_EQ((*window).last(), frontier - 1);
  for (int slot = oldest; slot < frontier; ++slot) {
    Tensor want_in = flow.inflow[slot];
    Tensor want_out = flow.outflow[slot];
    for (float& v : want_in.mutable_data()) v *= scale;
    for (float& v : want_out.mutable_data()) v *= scale;
    ExpectBitEqual((*window).inflow[slot - oldest], want_in);
    ExpectBitEqual((*window).outflow[slot - oldest], want_out);
  }
  // A single-slot range works too.
  ASSERT_TRUE(ring.SnapshotWindow(frontier - 1, frontier - 1).ok());

  // Malformed ranges.
  EXPECT_EQ(ring.SnapshotWindow(-1, 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ring.SnapshotWindow(frontier - 1, frontier - 2).status().code(),
            StatusCode::kInvalidArgument);
  // Not yet ingested: retry after the next Push, don't treat as fatal.
  EXPECT_EQ(ring.SnapshotWindow(frontier - 1, frontier).status().code(),
            StatusCode::kOutOfRange);
  // Fell behind retention (even when only the range's first slot did).
  const Status behind = ring.SnapshotWindow(oldest - 1, oldest).status();
  EXPECT_EQ(behind.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(behind.message().find("overwritten"), std::string::npos);

  // A copy that would straddle an in-flight overwrite fails typed; ranges
  // clear of the invalidated cell still copy out mid-ingest.
  bool hook_ran = false;
  ring.SetIngestPauseForTest([&] {
    hook_ran = true;
    const Status straddle =
        ring.SnapshotWindow(oldest, frontier - 1).status();
    EXPECT_EQ(straddle.code(), StatusCode::kFailedPrecondition);
    EXPECT_NE(straddle.message().find("in-flight"), std::string::npos);
    EXPECT_TRUE(ring.SnapshotWindow(oldest + 1, frontier - 1).ok());
  });
  ASSERT_TRUE(ring.Push(frontier, flow.inflow[0], flow.outflow[0]).ok());
  ring.SetIngestPauseForTest(nullptr);
  EXPECT_TRUE(hook_ran);
}

// Ingest races SnapshotWindow callers (the online trainer's read path):
// every successful copy must be bitwise-correct for its claimed range, and
// every refusal must be one of the three typed errors. Runs under TSAN.
TEST(FeatureRingTest, SnapshotWindowConcurrentWithIngestStaysConsistent) {
  const data::FlowDataset flow = MakeFlow();
  FeatureRing ring(flow.num_stations, 3, 1, flow.slots_per_day, 1.0f);
  FillRing(&ring, flow, ring.first_predictable_slot());

  std::atomic<bool> done{false};
  std::atomic<int> copies{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!done.load()) {
        const int frontier = ring.next_slot();
        const Result<SlotWindow> window =
            ring.SnapshotWindow(frontier - 2, frontier - 1);
        if (!window.ok()) {
          const StatusCode code = window.status().code();
          ASSERT_TRUE(code == StatusCode::kInvalidArgument ||
                      code == StatusCode::kOutOfRange ||
                      code == StatusCode::kFailedPrecondition)
              << window.status().ToString();
          continue;
        }
        copies.fetch_add(1);
        ASSERT_EQ((*window).count(), 2);
        for (int i = 0; i < 2; ++i) {
          const int slot = (*window).first + i;
          ExpectBitEqual((*window).inflow[i], flow.inflow[slot]);
          ExpectBitEqual((*window).outflow[i], flow.outflow[slot]);
        }
      }
    });
  }
  for (int t = ring.next_slot(); t < flow.num_slots; ++t) {
    ASSERT_TRUE(ring.Push(t, flow.inflow[t], flow.outflow[t]).ok());
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  done.store(true);
  for (auto& r : readers) r.join();
  EXPECT_GT(copies.load(), 0);
}

// --- LatencyHistogram ------------------------------------------------------

TEST(LatencyHistogramTest, PercentilesAndMean) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.PercentileNs(50), 0.0);
  for (int i = 1; i <= 100; ++i) hist.Record(i * 1000);  // 1..100 us
  EXPECT_EQ(hist.count(), 100);
  EXPECT_NEAR(hist.MeanNs(), 50500.0, 1.0);  // exact sum, not bucketed
  // Bucketed estimates: within the 25% geometric bucket width.
  EXPECT_NEAR(hist.PercentileNs(50), 50000.0, 50000.0 * 0.25);
  EXPECT_NEAR(hist.PercentileNs(95), 95000.0, 95000.0 * 0.25);
  EXPECT_NEAR(hist.PercentileNs(99), 99000.0, 99000.0 * 0.25);
  EXPECT_GE(hist.PercentileNs(99), hist.PercentileNs(50));
  hist.Reset();
  EXPECT_EQ(hist.count(), 0);
  EXPECT_EQ(hist.MeanNs(), 0.0);
}

// --- ModelRegistry ---------------------------------------------------------

TEST(ModelRegistryTest, PublishAssignsMonotonicVersions) {
  const data::FlowDataset flow = MakeFlow();
  const core::StgnnConfig config = TestConfig();
  const data::MinMaxNormalizer normalizer = data::MinMaxNormalizer::Fit(
      flow.demand, flow.supply, flow.train_end);
  ModelRegistry registry;
  EXPECT_EQ(registry.Current(), nullptr);
  EXPECT_EQ(registry.current_version(), 0u);
  EXPECT_EQ(registry.Publish(ModelSnapshot(
                MakeModel(flow.num_stations, config, 5), normalizer, 1.0f,
                config)),
            1u);
  EXPECT_EQ(registry.Publish(ModelSnapshot(
                MakeModel(flow.num_stations, config, 6), normalizer, 1.0f,
                config)),
            2u);
  EXPECT_EQ(registry.current_version(), 2u);
  EXPECT_EQ(registry.Current()->version, 2u);
}

TEST(ModelRegistryTest, SnapshotFromCheckpointReproducesForward) {
  const data::FlowDataset flow = MakeFlow();
  const core::StgnnConfig config = TestConfig();
  const data::MinMaxNormalizer normalizer = data::MinMaxNormalizer::Fit(
      flow.demand, flow.supply, flow.train_end);
  const auto trained = MakeModel(flow.num_stations, config, 1234);
  const std::string path = ::testing::TempDir() + "/serve_ckpt.bin";
  ASSERT_TRUE(nn::SaveParameters(*trained, path).ok());

  Result<ModelSnapshot> loaded = SnapshotFromCheckpoint(
      config, flow.num_stations, path, normalizer, 1.0f);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const int t = flow.FirstPredictableSlot(config.short_term_slots,
                                          config.long_term_days);
  const data::StHistory history = data::BuildStHistory(
      flow, t, config.short_term_slots, config.long_term_days, 1.0f);
  ExpectBitEqual(DirectPrediction(*(*loaded).model, normalizer, history),
                 DirectPrediction(*trained, normalizer, history));

  EXPECT_FALSE(SnapshotFromCheckpoint(config, flow.num_stations,
                                      path + ".missing", normalizer, 1.0f)
                   .ok());
}

// --- PredictionService -----------------------------------------------------

struct ServingHarness {
  explicit ServingHarness(ServiceOptions options, int upto_slot = -1)
      : flow(MakeFlow()),
        config(TestConfig()),
        scale(1.0f / flow.max_train_flow),
        normalizer(data::MinMaxNormalizer::Fit(flow.demand, flow.supply,
                                               flow.train_end)),
        ring(flow.num_stations, config.short_term_slots,
             config.long_term_days, flow.slots_per_day, scale),
        model(MakeModel(flow.num_stations, config, 5)),
        service(&registry, &ring, options) {
    const int frontier =
        upto_slot >= 0 ? upto_slot : ring.first_predictable_slot() + 4;
    for (int t = 0; t < frontier; ++t) {
      const Status st = ring.Push(t, flow.inflow[t], flow.outflow[t]);
      STGNN_CHECK(st.ok()) << st.ToString();
    }
  }

  void PublishModel() {
    registry.Publish(ModelSnapshot(model, normalizer, scale, config));
  }

  Tensor Expected(int t) const {
    return DirectPrediction(
        *model, normalizer,
        data::BuildStHistory(flow, t, config.short_term_slots,
                             config.long_term_days, scale));
  }

  data::FlowDataset flow;
  core::StgnnConfig config;
  float scale;
  data::MinMaxNormalizer normalizer;
  ModelRegistry registry;
  FeatureRing ring;
  std::shared_ptr<const core::StgnnDjdModel> model;
  PredictionService service;
};

TEST(PredictionServiceTest, BatchedServingMatchesDirectForward) {
  for (int workers : {1, 2, 7}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    ServingHarness h({.num_workers = workers, .max_batch = 4,
                      .max_queue = 64});
    h.PublishModel();
    h.service.Start();
    const int frontier = h.ring.next_slot();
    const Tensor expected = h.Expected(frontier);

    const std::vector<std::vector<int>> station_sets = {
        {}, {0}, {2, 4}, {1, 0, 3}, {7, 6, 5, 4, 3, 2, 1, 0}};
    std::vector<std::future<PredictResponse>> futures;
    for (int i = 0; i < 15; ++i) {
      PredictRequest request;
      // Mix "latest" with the same slot named explicitly: both resolve to
      // the frontier and must coalesce into shared batches.
      request.slot = (i % 2 == 0) ? PredictRequest::kLatestSlot : frontier;
      request.stations = station_sets[i % station_sets.size()];
      futures.push_back(h.service.SubmitAsync(std::move(request)));
    }
    for (size_t i = 0; i < futures.size(); ++i) {
      PredictResponse response = futures[i].get();
      ASSERT_TRUE(response.ok()) << response.status.ToString();
      EXPECT_EQ(response.slot, frontier);
      EXPECT_EQ(response.model_version, 1u);
      EXPECT_GE(response.batch_size, 1);
      EXPECT_LE(response.batch_size, 4);
      EXPECT_GE(response.latency_ns, 0);
      const std::vector<int>& stations =
          station_sets[i % station_sets.size()];
      const int rows = stations.empty() ? h.flow.num_stations
                                        : static_cast<int>(stations.size());
      ASSERT_EQ(response.predictions.shape(), (tensor::Shape{rows, 2}));
      for (int r = 0; r < rows; ++r) {
        const int src = stations.empty() ? r : stations[r];
        ASSERT_EQ(response.predictions.at(r, 0), expected.at(src, 0));
        ASSERT_EQ(response.predictions.at(r, 1), expected.at(src, 1));
      }
    }

    // Advance the frontier and serve the next slot: still bit-identical.
    ASSERT_TRUE(h.ring
                    .Push(frontier, h.flow.inflow[frontier],
                          h.flow.outflow[frontier])
                    .ok());
    PredictResponse next = h.service.Predict({});
    ASSERT_TRUE(next.ok()) << next.status.ToString();
    EXPECT_EQ(next.slot, frontier + 1);
    ExpectBitEqual(next.predictions, h.Expected(frontier + 1));

    const ServiceStats stats = h.service.stats();
    EXPECT_EQ(stats.submitted, 16);
    EXPECT_EQ(stats.served, 16);
    EXPECT_EQ(stats.shed_queue_full + stats.shed_deadline + stats.failed, 0);
    EXPECT_GE(stats.batches, 1);
    EXPECT_EQ(h.service.latency_histogram().count(), 16);
  }
}

TEST(PredictionServiceTest, HotSwapUnderLoadDropsAndTearsNothing) {
  ServingHarness h({.num_workers = 2, .max_batch = 8, .max_queue = 4096});
  const auto model_b = MakeModel(h.flow.num_stations, h.config, 77);
  const int frontier = h.ring.next_slot();
  const Tensor expected_a = h.Expected(frontier);
  const Tensor expected_b = DirectPrediction(
      *model_b, h.normalizer,
      data::BuildStHistory(h.flow, frontier, h.config.short_term_slots,
                           h.config.long_term_days, h.scale));

  // v1 = A; the swapper then alternates B, A, B, ... so even versions are
  // B and odd versions are A.
  h.PublishModel();
  h.service.Start();

  std::thread swapper([&] {
    for (int i = 0; i < 20; ++i) {
      if (i % 2 == 0) {
        h.registry.Publish(
            ModelSnapshot(model_b, h.normalizer, h.scale, h.config));
      } else {
        h.registry.Publish(
            ModelSnapshot(h.model, h.normalizer, h.scale, h.config));
      }
      std::this_thread::yield();
    }
  });

  constexpr int kRequests = 150;
  std::vector<std::future<PredictResponse>> futures;
  futures.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    futures.push_back(h.service.SubmitAsync({}));
  }
  swapper.join();

  for (auto& future : futures) {
    PredictResponse response = future.get();
    // Zero dropped: every request gets a real prediction through all the
    // swaps. Zero torn: the rows must be bitwise one model's output, the
    // one named by the reported version.
    ASSERT_TRUE(response.ok()) << response.status.ToString();
    ASSERT_GE(response.model_version, 1u);
    ASSERT_LE(response.model_version, 21u);
    const Tensor& expected =
        (response.model_version % 2 == 1) ? expected_a : expected_b;
    ExpectBitEqual(response.predictions, expected);
  }
  const ServiceStats stats = h.service.stats();
  EXPECT_EQ(stats.served, kRequests);
  EXPECT_EQ(stats.shed_queue_full + stats.shed_deadline + stats.failed, 0);
  EXPECT_EQ(h.registry.current_version(), 21u);
}

TEST(PredictionServiceTest, QueueFullRejectsAtAdmission) {
  ServingHarness h({.num_workers = 1, .max_batch = 4, .max_queue = 2});
  h.PublishModel();
  // Workers not started yet: the first two requests occupy the bounded
  // queue, the third must be rejected immediately.
  auto first = h.service.SubmitAsync({});
  auto second = h.service.SubmitAsync({});
  PredictResponse third = h.service.SubmitAsync({}).get();
  EXPECT_EQ(third.kind, PredictResponse::Kind::kRejectedQueueFull);

  h.service.Start();
  EXPECT_TRUE(first.get().ok());
  EXPECT_TRUE(second.get().ok());
  const ServiceStats stats = h.service.stats();
  EXPECT_EQ(stats.shed_queue_full, 1);
  EXPECT_EQ(stats.served, 2);
}

TEST(PredictionServiceTest, DeadlineShedsExpiredRequests) {
  ServingHarness h({.num_workers = 1, .max_batch = 4, .max_queue = 16});
  h.PublishModel();
  PredictRequest expired;
  expired.deadline_ns = common::trace::NowNs() - 1;
  auto shed = h.service.SubmitAsync(std::move(expired));
  PredictRequest fresh;
  fresh.deadline_ns = common::trace::NowNs() + int64_t{60} * 1000000000;
  auto served = h.service.SubmitAsync(std::move(fresh));

  h.service.Start();
  EXPECT_EQ(shed.get().kind, PredictResponse::Kind::kRejectedDeadline);
  EXPECT_TRUE(served.get().ok());
  const ServiceStats stats = h.service.stats();
  EXPECT_EQ(stats.shed_deadline, 1);
  EXPECT_EQ(stats.served, 1);
}

TEST(PredictionServiceTest, StopDrainsQueueAndRejectsLateSubmits) {
  ServingHarness h({.num_workers = 2, .max_batch = 4, .max_queue = 64});
  h.PublishModel();
  std::vector<std::future<PredictResponse>> futures;
  for (int i = 0; i < 5; ++i) futures.push_back(h.service.SubmitAsync({}));
  h.service.Start();
  h.service.Stop();
  for (auto& future : futures) {
    EXPECT_TRUE(future.get().ok());  // drained, not dropped
  }
  PredictResponse late = h.service.Predict({});
  EXPECT_EQ(late.kind, PredictResponse::Kind::kFailed);
  EXPECT_EQ(late.status.code(), StatusCode::kFailedPrecondition);
}

TEST(PredictionServiceTest, TypedFailures) {
  // No model published.
  {
    ServingHarness h({.num_workers = 1, .max_batch = 4, .max_queue = 16});
    h.service.Start();
    PredictResponse response = h.service.Predict({});
    EXPECT_EQ(response.kind, PredictResponse::Kind::kFailed);
    EXPECT_EQ(response.status.code(), StatusCode::kFailedPrecondition);
  }
  // Station index outside [0, n) fails that request only.
  {
    ServingHarness h({.num_workers = 1, .max_batch = 4, .max_queue = 16});
    h.PublishModel();
    h.service.Start();
    PredictRequest bad;
    bad.stations = {h.flow.num_stations + 3};
    auto bad_future = h.service.SubmitAsync(std::move(bad));
    auto good_future = h.service.SubmitAsync({});
    PredictResponse bad_response = bad_future.get();
    EXPECT_EQ(bad_response.kind, PredictResponse::Kind::kFailed);
    EXPECT_EQ(bad_response.status.code(), StatusCode::kInvalidArgument);
    EXPECT_TRUE(good_future.get().ok());
  }
  // Published model whose window disagrees with the ring.
  {
    ServingHarness h({.num_workers = 1, .max_batch = 4, .max_queue = 16});
    core::StgnnConfig other = h.config;
    other.short_term_slots += 1;
    h.registry.Publish(ModelSnapshot(
        MakeModel(h.flow.num_stations, other, 5), h.normalizer, h.scale,
        other));
    h.service.Start();
    PredictResponse response = h.service.Predict({});
    EXPECT_EQ(response.kind, PredictResponse::Kind::kFailed);
    EXPECT_EQ(response.status.code(), StatusCode::kFailedPrecondition);
    EXPECT_NE(response.status.message().find("does not match"),
              std::string::npos);
  }
  // A slot with no history yet (ahead of the frontier) fails typed.
  {
    ServingHarness h({.num_workers = 1, .max_batch = 4, .max_queue = 16});
    h.PublishModel();
    h.service.Start();
    PredictRequest ahead;
    ahead.slot = h.ring.next_slot() + 3;
    PredictResponse response = h.service.Predict(std::move(ahead));
    EXPECT_EQ(response.kind, PredictResponse::Kind::kFailed);
    EXPECT_EQ(response.status.code(), StatusCode::kOutOfRange);
  }
}

}  // namespace
}  // namespace stgnn::serve
