// Buffer pool unit tests plus the allocation-regression and parity batteries
// for the pooled-tensor memory plan:
//  - size-class rounding, cross-thread release, drain and disable/bypass
//  - poison tests: pooled buffers are pre-filled with NaN and every tensor
//    kernel that uses Tensor::Uninitialized must still produce bit-identical
//    results to the unpooled run (proving each overwrites every element)
//  - steady-state: after warmup, a training step performs zero fresh pool
//    allocations (every acquisition is a recycled buffer)
//  - whole-model parity: STGNN-DJD trained with the pool on and off, at 1, 2
//    and 7 kernel threads, produces bit-identical evaluation metrics.

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <limits>
#include <thread>
#include <vector>

#include "autograd/ops.h"
#include "common/buffer_pool.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/stgnn_djd.h"
#include "data/city_simulator.h"
#include "data/flow_dataset.h"
#include "eval/experiment.h"
#include "gtest/gtest.h"
#include "nn/linear.h"
#include "nn/optimizer.h"
#include "tensor/tensor.h"

namespace stgnn {
namespace {

using common::BufferPool;
using tensor::Tensor;
namespace ag = stgnn::autograd;

int64_t FreshAllocs(const BufferPool::Stats& before,
                    const BufferPool::Stats& after) {
  return (after.misses - before.misses) + (after.bypasses - before.bypasses);
}

void ExpectBitEqual(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  ASSERT_EQ(a.data().size(), b.data().size());
  EXPECT_EQ(0, std::memcmp(a.data().data(), b.data().data(),
                           a.data().size() * sizeof(float)))
      << "pooled and unpooled results differ bitwise";
}

// Fills the pool's bins for a spread of size classes with NaN-poisoned
// buffers, so any kernel that reads a pooled element before writing it
// produces NaN and fails the bitwise comparison against the unpooled run.
void PoisonPool() {
  BufferPool* pool = BufferPool::Global();
  for (size_t n : {size_t{64}, size_t{256}, size_t{1024}, size_t{4096},
                   size_t{16384}, size_t{65536}, size_t{262144}}) {
    for (int i = 0; i < 3; ++i) {
      std::vector<float> buf = pool->AcquireUninitialized(n);
      std::fill(buf.begin(), buf.end(),
                std::numeric_limits<float>::quiet_NaN());
      pool->Release(std::move(buf));
    }
  }
}

TEST(BufferPool, SizeClassRounding) {
  EXPECT_EQ(BufferPool::SizeClassFor(1), 64u);
  EXPECT_EQ(BufferPool::SizeClassFor(63), 64u);
  EXPECT_EQ(BufferPool::SizeClassFor(64), 64u);
  EXPECT_EQ(BufferPool::SizeClassFor(65), 128u);
  EXPECT_EQ(BufferPool::SizeClassFor(1000), 1024u);
  EXPECT_EQ(BufferPool::SizeClassFor(1024), 1024u);
  EXPECT_EQ(BufferPool::SizeClassFor(1025), 2048u);
  EXPECT_EQ(BufferPool::SizeClassFor(size_t{1} << 26), size_t{1} << 26);
}

TEST(BufferPool, AcquireRecyclesReleasedBuffer) {
  BufferPool* pool = BufferPool::Global();
  pool->SetEnabled(true);
  pool->Drain();
  {
    std::vector<float> buf = pool->AcquireUninitialized(500);
    std::fill(buf.begin(), buf.end(), 7.0f);
    pool->Release(std::move(buf));
  }
  const auto before = pool->stats();
  std::vector<float> again = pool->AcquireZeroed(500);
  const auto after = pool->stats();
  EXPECT_EQ(after.hits - before.hits, 1);
  EXPECT_EQ(FreshAllocs(before, after), 0);
  ASSERT_EQ(again.size(), 500u);
  for (float v : again) ASSERT_EQ(v, 0.0f);  // zeroed despite recycling
  pool->Release(std::move(again));
}

TEST(BufferPool, CrossThreadReleaseIsAcquirable) {
  BufferPool* pool = BufferPool::Global();
  pool->SetEnabled(true);
  pool->Drain();
  constexpr size_t kFloats = 5000;
  // The worker's thread cache flushes to the global bins on thread exit;
  // the main thread then acquires the same buffer.
  std::thread worker([&] {
    std::vector<float> buf;
    buf.reserve(BufferPool::SizeClassFor(kFloats));
    buf.resize(kFloats);
    pool->Release(std::move(buf));
  });
  worker.join();
  const auto before = pool->stats();
  std::vector<float> buf = pool->AcquireZeroed(kFloats);
  const auto after = pool->stats();
  EXPECT_EQ(after.hits - before.hits, 1);
  EXPECT_EQ(buf.size(), kFloats);
  pool->Release(std::move(buf));
}

TEST(BufferPool, DrainFreesEverything) {
  BufferPool* pool = BufferPool::Global();
  pool->SetEnabled(true);
  pool->Release(pool->AcquireUninitialized(300));
  pool->Drain();
  const auto before = pool->stats();
  std::vector<float> buf = pool->AcquireZeroed(300);
  const auto after = pool->stats();
  EXPECT_EQ(after.misses - before.misses, 1);
  EXPECT_EQ(after.hits - before.hits, 0);
  pool->Release(std::move(buf));
}

TEST(BufferPool, DisabledBypassesAndFrees) {
  BufferPool* pool = BufferPool::Global();
  pool->SetEnabled(false);
  const auto before = pool->stats();
  std::vector<float> buf = pool->AcquireZeroed(128);
  pool->Release(std::move(buf));
  std::vector<float> again = pool->AcquireZeroed(128);
  const auto after = pool->stats();
  EXPECT_EQ(after.bypasses - before.bypasses, 2);
  EXPECT_EQ(after.hits - before.hits, 0);
  pool->SetEnabled(true);
}

TEST(BufferPool, EnvKnobParsing) {
  ASSERT_EQ(setenv("STGNN_BUFFER_POOL", "0", 1), 0);
  EXPECT_FALSE(common::BufferPoolEnabledFromEnv());
  ASSERT_EQ(setenv("STGNN_BUFFER_POOL", "false", 1), 0);
  EXPECT_FALSE(common::BufferPoolEnabledFromEnv());
  ASSERT_EQ(setenv("STGNN_BUFFER_POOL", "off", 1), 0);
  EXPECT_FALSE(common::BufferPoolEnabledFromEnv());
  ASSERT_EQ(setenv("STGNN_BUFFER_POOL", "1", 1), 0);
  EXPECT_TRUE(common::BufferPoolEnabledFromEnv());
  ASSERT_EQ(unsetenv("STGNN_BUFFER_POOL"), 0);
  EXPECT_TRUE(common::BufferPoolEnabledFromEnv());
}

TEST(BufferPool, TensorDestructionRecyclesIntoNextTensor) {
  BufferPool* pool = BufferPool::Global();
  pool->SetEnabled(true);
  pool->Drain();
  { Tensor t({40, 40}); }
  const auto before = pool->stats();
  Tensor t2({40, 40});
  const auto after = pool->stats();
  EXPECT_EQ(after.hits - before.hits, 1);
  EXPECT_EQ(FreshAllocs(before, after), 0);
}

// Pins the move-aware construction audit: moving tensors and adopting
// caller buffers must not touch the allocator or the pool.
TEST(BufferPool, MoveConstructionDoesNotAllocate) {
  BufferPool* pool = BufferPool::Global();
  pool->SetEnabled(true);
  Tensor source({64, 64});
  std::vector<float> raw(128, 1.0f);
  const auto before = pool->stats();
  Tensor moved(std::move(source));              // move ctor
  Tensor assigned;
  const auto mid = pool->stats();               // assigned's scalar buffer
  assigned = std::move(moved);                  // move assign
  Tensor adopted({128}, std::move(raw));        // buffer adoption
  Tensor from_vec = Tensor::FromVector({1.0f, 2.0f, 3.0f});
  const auto after = pool->stats();
  // Move construction and assignment acquire nothing. FromVector adopts the
  // initializer-list vector. The only pool traffic in the window is the
  // default-constructed scalar and the release of assigned's previous
  // buffer.
  EXPECT_EQ(after.hits - mid.hits, 0);
  EXPECT_EQ(FreshAllocs(mid, after), 0);
  EXPECT_LE(FreshAllocs(before, mid) + (mid.hits - before.hits), 1);
  EXPECT_EQ(from_vec.size(), 3);
  EXPECT_EQ(adopted.size(), 128);
}

// Every kernel converted to Tensor::Uninitialized must overwrite all of its
// output before reading any of it. Poison the pool with NaN, run the op,
// and require the result to match the unpooled run bit-for-bit.
TEST(BufferPoolParity, KernelsOverwritePoisonedBuffers) {
  BufferPool* pool = BufferPool::Global();
  common::Rng rng(99);
  const Tensor a = Tensor::RandomUniform({24, 36}, -2.0f, 2.0f, &rng);
  const Tensor b = Tensor::RandomUniform({24, 36}, -2.0f, 2.0f, &rng);
  const Tensor row = Tensor::RandomUniform({1, 36}, -2.0f, 2.0f, &rng);
  const Tensor big_a = Tensor::RandomUniform({96, 96}, -1.0f, 1.0f, &rng);
  const Tensor big_b = Tensor::RandomUniform({96, 96}, -1.0f, 1.0f, &rng);

  struct Case {
    const char* name;
    std::function<Tensor()> run;
  };
  const std::vector<Case> cases = {
      {"Add", [&] { return tensor::Add(a, b); }},
      {"AddBroadcast", [&] { return tensor::Add(a, row); }},
      {"Relu", [&] { return tensor::Relu(a); }},
      {"Elu", [&] { return tensor::Elu(a); }},
      {"Sigmoid", [&] { return tensor::Sigmoid(a); }},
      {"MulScalar", [&] { return tensor::MulScalar(a, 0.37f); }},
      {"Transpose", [&] { return a.Transpose(); }},
      {"MatMulSmall", [&] { return tensor::MatMul(a, a.Transpose()); }},
      {"MatMulPanel", [&] { return tensor::MatMul(big_a, big_b); }},
      {"RowSoftmax", [&] { return tensor::RowSoftmax(a); }},
      {"SumAxis0", [&] { return tensor::SumAxis(a, 0); }},
      {"SumAxis1", [&] { return tensor::SumAxis(a, 1, true); }},
      {"MaxAxis", [&] { return tensor::MaxAxis(a, 1); }},
      {"Concat0", [&] { return tensor::Concat({a, b}, 0); }},
      {"Concat1", [&] { return tensor::Concat({a, b}, 1); }},
      {"Stack", [&] { return tensor::Stack({a, b}); }},
      {"SliceRows", [&] { return a.SliceRows(3, 17); }},
      {"Col", [&] { return a.Col(5); }},
      {"Reshape", [&] { return a.Reshape({36, 24}); }},
      {"Full", [&] { return Tensor::Full({33, 7}, 3.5f); }},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    pool->SetEnabled(false);  // drains; fresh zeroed buffers
    const Tensor expected = c.run();
    pool->SetEnabled(true);
    PoisonPool();
    const Tensor pooled = c.run();
    ExpectBitEqual(expected, pooled);
    pool->Drain();  // discard remaining poison
  }
}

// Same poison discipline through autograd: forward + backward of a small
// graph (bias add, relu, matmul, reductions) with release_graph on, against
// the unpooled run.
TEST(BufferPoolParity, BackwardMatchesUnpooledBitwise) {
  BufferPool* pool = BufferPool::Global();
  auto run = [&]() {
    common::Rng rng(7);
    nn::Mlp mlp({12, 16, 8}, &rng);
    ag::Variable x = ag::Variable::Constant(
        Tensor::RandomUniform({10, 12}, -1.0f, 1.0f, &rng));
    ag::Variable target = ag::Variable::Constant(
        Tensor::RandomUniform({10, 8}, -1.0f, 1.0f, &rng));
    ag::Variable pred = mlp.Forward(x);
    ag::Variable loss =
        ag::MeanAll(ag::Square(ag::Sub(pred, target)));
    loss.Backward({.release_graph = true});
    std::vector<Tensor> out;
    out.push_back(loss.value());
    for (const auto& p : mlp.parameters()) out.push_back(p.grad());
    return out;
  };
  pool->SetEnabled(false);
  const std::vector<Tensor> expected = run();
  pool->SetEnabled(true);
  PoisonPool();
  const std::vector<Tensor> pooled = run();
  ASSERT_EQ(expected.size(), pooled.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    SCOPED_TRACE(i);
    ExpectBitEqual(expected[i], pooled[i]);
  }
  pool->Drain();
}

// The tentpole acceptance: after warmup, a steady-state training step
// (forward, backward with release_graph, clip, Adam step) performs ZERO
// fresh pool allocations — every tensor buffer it needs is recycled.
TEST(BufferPoolSteadyState, TrainingStepPerformsNoFreshAllocations) {
  BufferPool* pool = BufferPool::Global();
  pool->SetEnabled(true);
  common::SetNumThreads(2);
  common::Rng rng(123);
  nn::Mlp mlp({32, 64, 64, 16}, &rng);
  nn::Adam opt(mlp.parameters(), 1e-3f);
  const Tensor x = Tensor::RandomUniform({48, 32}, -1.0f, 1.0f, &rng);
  const Tensor y = Tensor::RandomUniform({48, 16}, -1.0f, 1.0f, &rng);
  auto step = [&]() {
    ag::Variable input = ag::Variable::Constant(x);
    ag::Variable target = ag::Variable::Constant(y);
    ag::Variable pred = mlp.Forward(input);
    ag::Variable loss = ag::MeanAll(ag::Square(ag::Sub(pred, target)));
    opt.ZeroGrad();
    loss.Backward({.release_graph = true});
    nn::ClipGradNorm(mlp.parameters(), 5.0f);
    opt.Step();
    return loss.value().item();
  };
  for (int i = 0; i < 3; ++i) step();  // warmup fills the bins
  const auto before = pool->stats();
  float last = 0.0f;
  for (int i = 0; i < 10; ++i) last = step();
  const auto after = pool->stats();
  EXPECT_EQ(FreshAllocs(before, after), 0)
      << "steady-state step hit the allocator";
  EXPECT_GT(after.hits - before.hits, 0);
  EXPECT_TRUE(std::isfinite(last));
}

const data::FlowDataset& MiniFlow() {
  static const data::FlowDataset* flow = [] {
    data::CityConfig config = data::CityConfig::Tiny();
    config.num_days = 10;
    config.seed = 21;
    return new data::FlowDataset(
        data::BuildFlowDataset(data::CitySimulator(config).Generate()));
  }();
  return *flow;
}

eval::Metrics TrainMiniModel(bool pooled, int threads) {
  core::StgnnConfig config;
  config.short_term_slots = 6;
  config.long_term_days = 2;
  config.fcg_layers = 1;
  config.pcg_layers = 1;
  config.attention_heads = 2;
  config.epochs = 1;
  config.batch_size = 8;
  config.max_samples_per_epoch = 24;
  config.seed = 5;
  config.num_threads = threads;
  config.buffer_pool = pooled;
  core::StgnnDjdPredictor model(config);
  model.Train(MiniFlow());
  eval::EvalWindow window;
  window.min_history = model.MinHistorySlots(MiniFlow());
  return eval::EvaluateOnTestSplit(&model, MiniFlow(), window);
}

// Whole model, pool on vs off, at 1/2/7 kernel threads: training and
// evaluation must agree bit-for-bit in every combination.
TEST(BufferPoolParity, ModelTrainingBitIdenticalPooledVsUnpooled) {
  for (int threads : {1, 2, 7}) {
    SCOPED_TRACE(threads);
    const eval::Metrics pooled = TrainMiniModel(true, threads);
    const eval::Metrics unpooled = TrainMiniModel(false, threads);
    EXPECT_EQ(pooled.rmse, unpooled.rmse);
    EXPECT_EQ(pooled.mae, unpooled.mae);
    EXPECT_EQ(pooled.count, unpooled.count);
  }
  BufferPool::Global()->SetEnabled(true);  // restore for later tests
}

// A second full Train in a warm process recycles nearly everything: the
// hit count dwarfs the (bounded) fresh-allocation count.
TEST(BufferPoolSteadyState, SecondTrainRunRecyclesBuffers) {
  BufferPool* pool = BufferPool::Global();
  pool->SetEnabled(true);
  TrainMiniModel(true, 2);  // warm the bins
  const auto before = pool->stats();
  TrainMiniModel(true, 2);
  const auto after = pool->stats();
  EXPECT_LE(FreshAllocs(before, after), 64);
  EXPECT_GT(after.hits - before.hits, 1000);
}

}  // namespace
}  // namespace stgnn
