#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/stgnn_djd.h"
#include "data/window.h"
#include "gradcheck.h"
#include "gtest/gtest.h"
#include "nn/init.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/rnn.h"
#include "nn/serialize.h"

namespace stgnn::nn {
namespace {

namespace ag = stgnn::autograd;
using autograd::Variable;
using stgnn::testing::ExpectGradientsClose;
using tensor::Tensor;

TEST(InitTest, XavierBounds) {
  common::Rng rng(1);
  const Tensor w = XavierUniform2d(100, 50, &rng);
  const float bound = std::sqrt(6.0f / 150.0f);
  for (float v : w.data()) {
    EXPECT_GE(v, -bound);
    EXPECT_LT(v, bound);
  }
}

TEST(InitTest, KaimingVariance) {
  common::Rng rng(2);
  const Tensor w = KaimingNormal({200, 200}, 200, &rng);
  double sum_sq = 0.0;
  for (float v : w.data()) sum_sq += v * v;
  EXPECT_NEAR(sum_sq / w.size(), 2.0 / 200.0, 2e-3);
}

TEST(LinearTest, ShapesAndBias) {
  common::Rng rng(3);
  Linear layer(4, 3, &rng);
  Variable x = Variable::Constant(Tensor::Ones({2, 4}));
  Variable y = layer.Forward(x);
  EXPECT_EQ(y.value().shape(), (tensor::Shape{2, 3}));
  EXPECT_EQ(layer.NumParameters(), 4 * 3 + 3);
}

TEST(LinearTest, NoBiasOption) {
  common::Rng rng(4);
  Linear layer(4, 3, &rng, /*with_bias=*/false);
  EXPECT_EQ(layer.NumParameters(), 12);
  Variable zero_in = Variable::Constant(Tensor::Zeros({1, 4}));
  EXPECT_TRUE(layer.Forward(zero_in).value().AllClose(Tensor::Zeros({1, 3})));
}

TEST(LinearTest, MatchesManualAffine) {
  common::Rng rng(5);
  Linear layer(2, 2, &rng);
  Tensor x({1, 2}, {1.0f, -2.0f});
  const Tensor w = layer.weight().value();
  const Tensor b = layer.bias().value();
  const Tensor expect =
      tensor::Add(tensor::MatMul(x, w), b);
  EXPECT_TRUE(layer.Forward(Variable::Constant(x)).value().AllClose(expect));
}

TEST(ModuleTest, ParameterRegistry) {
  common::Rng rng(6);
  Mlp mlp({4, 8, 2}, &rng);
  // Two Linear layers: 4*8+8 + 8*2+2.
  EXPECT_EQ(mlp.NumParameters(), 4 * 8 + 8 + 8 * 2 + 2);
  EXPECT_EQ(mlp.parameters().size(), 4u);
  mlp.ZeroGrad();
  for (const auto& p : mlp.parameters()) {
    EXPECT_TRUE(p.grad().AllClose(Tensor::Zeros(p.value().shape())));
  }
}

TEST(RnnCellTest, ShapesAndBoundedOutput) {
  common::Rng rng(7);
  RnnCell cell(3, 5, &rng);
  Variable x = Variable::Constant(Tensor::Ones({2, 3}));
  Variable h = cell.InitialState(2);
  Variable h1 = cell.Forward(x, h);
  EXPECT_EQ(h1.value().shape(), (tensor::Shape{2, 5}));
  for (float v : h1.value().data()) {
    EXPECT_GE(v, -1.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(LstmCellTest, StateShapesAndGateEffect) {
  common::Rng rng(8);
  LstmCell cell(2, 4, &rng);
  LstmCell::State state = cell.InitialState(3);
  Variable x = Variable::Constant(Tensor::Ones({3, 2}));
  LstmCell::State next = cell.Forward(x, state);
  EXPECT_EQ(next.h.value().shape(), (tensor::Shape{3, 4}));
  EXPECT_EQ(next.c.value().shape(), (tensor::Shape{3, 4}));
  // Cell state should change from zero on non-zero input.
  EXPECT_FALSE(next.c.value().AllClose(Tensor::Zeros({3, 4})));
}

TEST(RnnRunnerTest, SequenceLengthIndependentShapes) {
  common::Rng rng(9);
  RnnCell cell(2, 4, &rng);
  std::vector<Variable> seq;
  for (int i = 0; i < 7; ++i) {
    seq.push_back(Variable::Constant(Tensor::Ones({3, 2})));
  }
  EXPECT_EQ(RunRnn(cell, seq, 3).value().shape(), (tensor::Shape{3, 4}));
  LstmCell lstm(2, 4, &rng);
  EXPECT_EQ(RunLstm(lstm, seq, 3).value().shape(), (tensor::Shape{3, 4}));
}

TEST(LstmGradCheck, BackpropThroughTime) {
  common::Rng rng(10);
  const Tensor x0 = Tensor::RandomUniform({2, 2}, -1, 1, &rng);
  const Tensor x1 = Tensor::RandomUniform({2, 2}, -1, 1, &rng);
  LstmCell cell(2, 3, &rng);
  // Check gradients w.r.t. the inputs through two unrolled steps.
  ExpectGradientsClose(
      [&cell](const std::vector<Variable>& v) {
        LstmCell::State state = cell.InitialState(2);
        state = cell.Forward(v[0], state);
        state = cell.Forward(v[1], state);
        return ag::SumAll(ag::Square(state.h));
      },
      {x0, x1});
}

TEST(LossTest, MseKnownValue) {
  Variable pred = Variable::Constant(Tensor({2, 2}, {1, 2, 3, 4}));
  Variable target = Variable::Constant(Tensor({2, 2}, {1, 0, 3, 0}));
  // Errors: 0, 2, 0, 4 -> mean of squares = (4 + 16) / 4 = 5.
  EXPECT_NEAR(MseLoss(pred, target).value().item(), 5.0f, 1e-5);
}

TEST(LossTest, JointLossMatchesEquation21) {
  // n = 2 stations; prediction errors demand {1, 0}, supply {0, 2}.
  Variable pred = Variable::Constant(Tensor({2, 2}, {2, 1, 1, 0}));
  Variable target = Variable::Constant(Tensor({2, 2}, {1, 1, 1, 2}));
  // L = sqrt(mean_demand_sq + mean_supply_sq) = sqrt(0.5 + 2) = sqrt(2.5).
  EXPECT_NEAR(JointDemandSupplyLoss(pred, target).value().item(),
              std::sqrt(2.5f), 1e-4);
}

TEST(LossTest, JointLossGradcheck) {
  common::Rng rng(11);
  const Tensor pred = Tensor::RandomUniform({3, 2}, -1, 1, &rng);
  const Tensor target = Tensor::RandomUniform({3, 2}, -1, 1, &rng);
  ExpectGradientsClose(
      [&target](const std::vector<Variable>& v) {
        return JointDemandSupplyLoss(v[0], Variable::Constant(target));
      },
      {pred});
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Variable x = Variable::Parameter(Tensor::Scalar(5.0f));
  Sgd opt({x}, 0.1f);
  for (int i = 0; i < 100; ++i) {
    opt.ZeroGrad();
    Variable loss = ag::Square(x);
    loss.Backward();
    opt.Step();
  }
  EXPECT_NEAR(x.value().item(), 0.0f, 1e-3);
}

TEST(SgdTest, MomentumAcceleratesDescent) {
  Variable a = Variable::Parameter(Tensor::Scalar(5.0f));
  Variable b = Variable::Parameter(Tensor::Scalar(5.0f));
  Sgd plain({a}, 0.01f);
  Sgd momentum({b}, 0.01f, 0.9f);
  for (int i = 0; i < 30; ++i) {
    plain.ZeroGrad();
    ag::Square(a).Backward();
    plain.Step();
    momentum.ZeroGrad();
    ag::Square(b).Backward();
    momentum.Step();
  }
  EXPECT_LT(std::fabs(b.value().item()), std::fabs(a.value().item()));
}

TEST(AdamTest, ConvergesOnQuadraticBowl) {
  common::Rng rng(12);
  Variable w = Variable::Parameter(Tensor::RandomUniform({4, 1}, -2, 2, &rng));
  Adam opt({w}, 0.05f);
  for (int i = 0; i < 300; ++i) {
    opt.ZeroGrad();
    ag::SumAll(ag::Square(w)).Backward();
    opt.Step();
  }
  for (float v : w.value().data()) EXPECT_NEAR(v, 0.0f, 1e-2);
}

TEST(AdamTest, FitsLinearRegression) {
  // y = 2 x1 - 3 x2 + 1; fit with a Linear layer.
  common::Rng rng(13);
  Linear layer(2, 1, &rng);
  Adam opt(layer.parameters(), 0.05f);
  for (int step = 0; step < 400; ++step) {
    Tensor x = Tensor::RandomUniform({16, 2}, -1, 1, &rng);
    Tensor y({16, 1});
    for (int i = 0; i < 16; ++i) {
      y.at(i, 0) = 2.0f * x.at(i, 0) - 3.0f * x.at(i, 1) + 1.0f;
    }
    opt.ZeroGrad();
    Variable loss = MseLoss(layer.Forward(Variable::Constant(x)),
                            Variable::Constant(y));
    loss.Backward();
    opt.Step();
  }
  EXPECT_NEAR(layer.weight().value().at(0, 0), 2.0f, 0.05f);
  EXPECT_NEAR(layer.weight().value().at(1, 0), -3.0f, 0.05f);
  EXPECT_NEAR(layer.bias().value().at(0, 0), 1.0f, 0.05f);
}

TEST(ClipGradTest, ScalesDownLargeGradients) {
  Variable x = Variable::Parameter(Tensor({2}, {30.0f, 40.0f}));
  ag::SumAll(ag::Mul(x, x)).Backward();  // grad = 2x = {60, 80}, norm 100
  const float pre = ClipGradNorm({x}, 10.0f);
  EXPECT_NEAR(pre, 100.0f, 1e-3);
  const Tensor g = x.grad();
  EXPECT_NEAR(std::sqrt(g.at(0) * g.at(0) + g.at(1) * g.at(1)), 10.0f, 1e-3);
  // Direction preserved.
  EXPECT_NEAR(g.at(0) / g.at(1), 60.0f / 80.0f, 1e-4);
}

TEST(ClipGradTest, NoopUnderThreshold) {
  Variable x = Variable::Parameter(Tensor({2}, {0.3f, 0.4f}));
  ag::SumAll(ag::Mul(x, x)).Backward();
  const Tensor before = x.grad();
  ClipGradNorm({x}, 10.0f);
  EXPECT_TRUE(x.grad().AllClose(before));
}

TEST(MlpTest, LearnsXorLikePattern) {
  common::Rng rng(14);
  Mlp mlp({2, 16, 1}, &rng);
  Adam opt(mlp.parameters(), 0.03f);
  const Tensor inputs({4, 2}, {0, 0, 0, 1, 1, 0, 1, 1});
  const Tensor targets({4, 1}, {0, 1, 1, 0});
  for (int step = 0; step < 800; ++step) {
    opt.ZeroGrad();
    Variable loss = MseLoss(mlp.Forward(Variable::Constant(inputs)),
                            Variable::Constant(targets));
    loss.Backward();
    opt.Step();
  }
  const Tensor out = mlp.Forward(Variable::Constant(inputs)).value();
  EXPECT_LT(out.at(0, 0), 0.3f);
  EXPECT_GT(out.at(1, 0), 0.7f);
  EXPECT_GT(out.at(2, 0), 0.7f);
  EXPECT_LT(out.at(3, 0), 0.3f);
}

// --- Serialize round trips --------------------------------------------------
// For every module kind: save module A, load into a differently-initialised
// module B of the same architecture, and require B's forward output to match
// A's bit-for-bit (checkpoints store the exact float32 words).

std::string RoundTripPath(const std::string& tag) {
  return ::testing::TempDir() + "/stgnn_nn_roundtrip_" + tag + ".ckpt";
}

void ExpectBitIdentical(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  for (int64_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.flat(i), b.flat(i)) << "element " << i;
  }
}

TEST(SerializeRoundTrip, LinearBitIdenticalForward) {
  common::Rng rng_a(41);
  common::Rng rng_b(42);
  Linear a(5, 3, &rng_a);
  Linear b(5, 3, &rng_b);
  common::Rng input_rng(43);
  const Variable x =
      Variable::Constant(Tensor::RandomNormal({4, 5}, 0, 1, &input_rng));
  ASSERT_FALSE(a.Forward(x).value().AllClose(b.Forward(x).value(), 1e-6f))
      << "differently seeded layers should disagree before loading";

  const std::string path = RoundTripPath("linear");
  ASSERT_TRUE(SaveParameters(a, path).ok());
  ASSERT_TRUE(LoadParameters(path, &b).ok());
  ExpectBitIdentical(a.Forward(x).value(), b.Forward(x).value());
  std::remove(path.c_str());
}

TEST(SerializeRoundTrip, MlpBitIdenticalForward) {
  common::Rng rng_a(51);
  common::Rng rng_b(52);
  Mlp a({4, 8, 8, 2}, &rng_a);
  Mlp b({4, 8, 8, 2}, &rng_b);
  common::Rng input_rng(53);
  const Variable x =
      Variable::Constant(Tensor::RandomNormal({3, 4}, 0, 1, &input_rng));

  const std::string path = RoundTripPath("mlp");
  ASSERT_TRUE(SaveParameters(a, path).ok());
  ASSERT_TRUE(LoadParameters(path, &b).ok());
  ExpectBitIdentical(a.Forward(x).value(), b.Forward(x).value());
  std::remove(path.c_str());
}

TEST(SerializeRoundTrip, RnnCellBitIdenticalForward) {
  common::Rng rng_a(61);
  common::Rng rng_b(62);
  RnnCell a(4, 6, &rng_a);
  RnnCell b(4, 6, &rng_b);
  common::Rng input_rng(63);
  const Variable x =
      Variable::Constant(Tensor::RandomNormal({2, 4}, 0, 1, &input_rng));
  const Variable h =
      Variable::Constant(Tensor::RandomNormal({2, 6}, 0, 1, &input_rng));

  const std::string path = RoundTripPath("rnn_cell");
  ASSERT_TRUE(SaveParameters(a, path).ok());
  ASSERT_TRUE(LoadParameters(path, &b).ok());
  ExpectBitIdentical(a.Forward(x, h).value(), b.Forward(x, h).value());
  std::remove(path.c_str());
}

TEST(SerializeRoundTrip, LstmCellBitIdenticalForward) {
  common::Rng rng_a(71);
  common::Rng rng_b(72);
  LstmCell a(4, 6, &rng_a);
  LstmCell b(4, 6, &rng_b);
  common::Rng input_rng(73);
  const Variable x =
      Variable::Constant(Tensor::RandomNormal({2, 4}, 0, 1, &input_rng));
  LstmCell::State state;
  state.h = Variable::Constant(Tensor::RandomNormal({2, 6}, 0, 1, &input_rng));
  state.c = Variable::Constant(Tensor::RandomNormal({2, 6}, 0, 1, &input_rng));

  const std::string path = RoundTripPath("lstm_cell");
  ASSERT_TRUE(SaveParameters(a, path).ok());
  ASSERT_TRUE(LoadParameters(path, &b).ok());
  const LstmCell::State out_a = a.Forward(x, state);
  const LstmCell::State out_b = b.Forward(x, state);
  ExpectBitIdentical(out_a.h.value(), out_b.h.value());
  ExpectBitIdentical(out_a.c.value(), out_b.c.value());
  std::remove(path.c_str());
}

TEST(SerializeRoundTrip, FullStgnnDjdBitIdenticalForward) {
  core::StgnnConfig config;
  config.short_term_slots = 4;
  config.long_term_days = 2;
  config.fcg_layers = 1;
  config.pcg_layers = 1;
  config.attention_heads = 2;
  config.dropout = 0.0f;
  const int n = 6;

  common::Rng rng_a(81);
  common::Rng rng_b(82);
  core::StgnnDjdModel a(n, config, &rng_a);
  core::StgnnDjdModel b(n, config, &rng_b);

  common::Rng input_rng(83);
  data::StHistory history;
  history.inflow_short =
      Tensor::RandomUniform({4, n * n}, 0.0f, 0.6f, &input_rng);
  history.outflow_short =
      Tensor::RandomUniform({4, n * n}, 0.0f, 0.6f, &input_rng);
  history.inflow_long =
      Tensor::RandomUniform({2, n * n}, 0.0f, 0.6f, &input_rng);
  history.outflow_long =
      Tensor::RandomUniform({2, n * n}, 0.0f, 0.6f, &input_rng);

  const std::string path = RoundTripPath("stgnn_djd");
  ASSERT_TRUE(SaveParameters(a, path).ok());
  ASSERT_TRUE(LoadParameters(path, &b).ok());
  ExpectBitIdentical(a.Forward(history, false, nullptr).value(),
                     b.Forward(history, false, nullptr).value());
  std::remove(path.c_str());
}

TEST(SerializeRoundTrip, ShapeMismatchFailsToLoad) {
  common::Rng rng(91);
  Linear saved(4, 3, &rng);
  Linear wrong_shape(3, 4, &rng);
  const std::string path = RoundTripPath("mismatch");
  ASSERT_TRUE(SaveParameters(saved, path).ok());
  const Status st = LoadParameters(path, &wrong_shape);
  EXPECT_FALSE(st.ok());
  std::remove(path.c_str());
}

// --- Adam optimizer-state checkpoints ---------------------------------------

// Runs `steps` Adam steps on `layer` against the pre-generated batches
// starting at `first`, minimising MSE to y = 2 x1 - 3 x2 + 1.
void RunRegressionSteps(Linear* layer, Adam* opt,
                        const std::vector<Tensor>& batches, int first,
                        int steps) {
  for (int s = first; s < first + steps; ++s) {
    const Tensor& x = batches[s];
    Tensor y({x.dim(0), 1});
    for (int i = 0; i < x.dim(0); ++i) {
      y.at(i, 0) = 2.0f * x.at(i, 0) - 3.0f * x.at(i, 1) + 1.0f;
    }
    opt->ZeroGrad();
    MseLoss(layer->Forward(Variable::Constant(x)), Variable::Constant(y))
        .Backward();
    opt->Step();
  }
}

std::vector<Tensor> RegressionBatches(int count) {
  common::Rng rng(61);
  std::vector<Tensor> batches;
  for (int s = 0; s < count; ++s) {
    batches.push_back(Tensor::RandomUniform({16, 2}, -1, 1, &rng));
  }
  return batches;
}

TEST(SerializeRoundTrip, AdamStateBitIdenticalRoundTrip) {
  common::Rng rng(62);
  Linear layer(2, 1, &rng);
  Adam opt(layer.parameters(), 0.05f);
  const std::vector<Tensor> batches = RegressionBatches(5);
  RunRegressionSteps(&layer, &opt, batches, 0, 5);

  const AdamState saved = opt.ExportState();
  ASSERT_EQ(saved.step_count, 5);
  const std::string path = RoundTripPath("adam");
  ASSERT_TRUE(SaveAdamState(saved, path).ok());
  const Result<AdamState> loaded = LoadAdamState(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded).step_count, saved.step_count);
  ASSERT_EQ((*loaded).first_moment.size(), saved.first_moment.size());
  ASSERT_EQ((*loaded).second_moment.size(), saved.second_moment.size());
  for (size_t i = 0; i < saved.first_moment.size(); ++i) {
    ExpectBitIdentical((*loaded).first_moment[i], saved.first_moment[i]);
    ExpectBitIdentical((*loaded).second_moment[i], saved.second_moment[i]);
  }
  std::remove(path.c_str());
}

TEST(SerializeRoundTrip, AdamStateMalformedFails) {
  EXPECT_FALSE(LoadAdamState("/nonexistent/adam.ckpt").ok());

  // Wrong magic.
  const std::string path = RoundTripPath("adam_bad");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("NOTADAM1", f);
    std::fclose(f);
  }
  EXPECT_FALSE(LoadAdamState(path).ok());

  // Truncated: a valid header cut off mid-moments.
  common::Rng rng(63);
  Linear layer(2, 1, &rng);
  Adam opt(layer.parameters(), 0.05f);
  const std::vector<Tensor> batches = RegressionBatches(1);
  RunRegressionSteps(&layer, &opt, batches, 0, 1);
  ASSERT_TRUE(SaveAdamState(opt.ExportState(), path).ok());
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long full = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(truncate(path.c_str(), full - 4), 0);
  }
  EXPECT_FALSE(LoadAdamState(path).ok());
  std::remove(path.c_str());

  // Import into an optimizer whose parameter list disagrees.
  Linear other(3, 2, &rng);
  Adam mismatched(other.parameters(), 0.05f);
  EXPECT_FALSE(mismatched.ImportState(opt.ExportState()).ok());
}

// The warm-start contract the online trainer is built on: training M+K
// steps straight through equals training M steps, checkpointing parameters
// AND optimizer state, restoring both into fresh objects, and training K
// more — bit-for-bit, not approximately.
TEST(SerializeRoundTrip, AdamWarmStartContinuesBitIdentically) {
  const int kFirstLeg = 7;
  const int kSecondLeg = 6;
  const std::vector<Tensor> batches = RegressionBatches(kFirstLeg + kSecondLeg);

  common::Rng rng_a(64);
  Linear uninterrupted(2, 1, &rng_a);
  Adam opt_a(uninterrupted.parameters(), 0.05f);
  RunRegressionSteps(&uninterrupted, &opt_a, batches, 0,
                     kFirstLeg + kSecondLeg);

  common::Rng rng_b(64);  // same init as the uninterrupted run
  Linear first_leg(2, 1, &rng_b);
  Adam opt_b(first_leg.parameters(), 0.05f);
  RunRegressionSteps(&first_leg, &opt_b, batches, 0, kFirstLeg);
  const std::string params_path = RoundTripPath("warm_params");
  const std::string adam_path = RoundTripPath("warm_adam");
  ASSERT_TRUE(SaveParameters(first_leg, params_path).ok());
  ASSERT_TRUE(SaveAdamState(opt_b.ExportState(), adam_path).ok());

  common::Rng rng_c(65);  // deliberately different init: the load overwrites
  Linear resumed(2, 1, &rng_c);
  ASSERT_TRUE(LoadParameters(params_path, &resumed).ok());
  Adam opt_c(resumed.parameters(), 0.05f);
  const Result<AdamState> restored = LoadAdamState(adam_path);
  ASSERT_TRUE(restored.ok());
  ASSERT_TRUE(opt_c.ImportState(*restored).ok());
  RunRegressionSteps(&resumed, &opt_c, batches, kFirstLeg, kSecondLeg);

  ExpectBitIdentical(resumed.weight().value(), uninterrupted.weight().value());
  ExpectBitIdentical(resumed.bias().value(), uninterrupted.bias().value());

  // Without the optimizer state the same continuation diverges — the moment
  // buffers and bias-correction counter are load-bearing.
  common::Rng rng_d(66);
  Linear cold(2, 1, &rng_d);
  ASSERT_TRUE(LoadParameters(params_path, &cold).ok());
  Adam opt_d(cold.parameters(), 0.05f);  // fresh moments, step_count 0
  RunRegressionSteps(&cold, &opt_d, batches, kFirstLeg, kSecondLeg);
  bool identical = true;
  const Tensor& got = cold.weight().value();
  const Tensor& want = uninterrupted.weight().value();
  for (int64_t i = 0; i < want.size(); ++i) {
    if (got.flat(i) != want.flat(i)) identical = false;
  }
  EXPECT_FALSE(identical) << "cold-restart continuation should diverge";

  std::remove(params_path.c_str());
  std::remove(adam_path.c_str());
}

}  // namespace
}  // namespace stgnn::nn
