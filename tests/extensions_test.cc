// Tests for the extension features: multi-step prediction (the paper's
// Section IX future work), parameter serialization, and the initialisation
// schemes used by the GNN stacks.

#include <cstdio>
#include <fstream>

#include "core/stgnn_djd.h"
#include "data/city_simulator.h"
#include "data/window.h"
#include "gradcheck.h"
#include "gtest/gtest.h"
#include "nn/init.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"

namespace stgnn {
namespace {

namespace ag = stgnn::autograd;
using autograd::Variable;
using tensor::Tensor;

const data::FlowDataset& TestFlow() {
  static const data::FlowDataset* flow = [] {
    data::CityConfig config = data::CityConfig::Tiny();
    config.num_days = 16;
    return new data::FlowDataset(
        data::BuildFlowDataset(data::CitySimulator(config).Generate()));
  }();
  return *flow;
}

// --- Multi-step targets and loss ---

TEST(MultiStepTest, TargetLayout) {
  const auto& flow = TestFlow();
  const int t = 100;
  const int horizon = 3;
  const Tensor target = data::MultiStepTargetAt(flow, t, horizon);
  ASSERT_EQ(target.shape(), (tensor::Shape{flow.num_stations, 6}));
  for (int i = 0; i < flow.num_stations; ++i) {
    for (int h = 0; h < horizon; ++h) {
      EXPECT_FLOAT_EQ(target.at(i, h), flow.demand.at(t + h, i));
      EXPECT_FLOAT_EQ(target.at(i, horizon + h), flow.supply.at(t + h, i));
    }
  }
}

TEST(MultiStepTest, HorizonOneMatchesSingleStepTarget) {
  const auto& flow = TestFlow();
  EXPECT_TRUE(data::MultiStepTargetAt(flow, 50, 1)
                  .AllClose(data::TargetAt(flow, 50)));
}

TEST(MultiStepTest, LossReducesToEq21AtHorizonOne) {
  common::Rng rng(1);
  const Tensor pred = Tensor::RandomUniform({4, 2}, 0, 1, &rng);
  const Tensor target = Tensor::RandomUniform({4, 2}, 0, 1, &rng);
  const float joint = nn::JointDemandSupplyLoss(Variable::Constant(pred),
                                                Variable::Constant(target))
                          .value()
                          .item();
  const float multi = nn::MultiStepJointLoss(Variable::Constant(pred),
                                             Variable::Constant(target))
                          .value()
                          .item();
  EXPECT_NEAR(joint, multi, 1e-5);
}

TEST(MultiStepTest, LossGradcheck) {
  common::Rng rng(2);
  const Tensor pred = Tensor::RandomUniform({3, 6}, 0, 1, &rng);
  const Tensor target = Tensor::RandomUniform({3, 6}, 0, 1, &rng);
  stgnn::testing::ExpectGradientsClose(
      [&target](const std::vector<Variable>& v) {
        return nn::MultiStepJointLoss(v[0], Variable::Constant(target));
      },
      {pred});
}

TEST(MultiStepTest, StgnnTrainsAndPredictsHorizon) {
  const auto& flow = TestFlow();
  core::StgnnConfig config;
  config.short_term_slots = 8;
  config.long_term_days = 2;
  config.fcg_layers = 1;
  config.pcg_layers = 1;
  config.attention_heads = 2;
  config.epochs = 2;
  config.max_samples_per_epoch = 32;
  config.horizon = 4;
  core::StgnnDjdPredictor predictor(config);
  predictor.Train(flow);
  const int t = std::max(flow.val_end, predictor.MinHistorySlots(flow));
  const Tensor horizon_pred = predictor.PredictHorizon(flow, t);
  ASSERT_EQ(horizon_pred.shape(), (tensor::Shape{flow.num_stations, 8}));
  const Tensor single = predictor.Predict(flow, t);
  ASSERT_EQ(single.shape(), (tensor::Shape{flow.num_stations, 2}));
  // Predict() is the first step of PredictHorizon().
  for (int i = 0; i < flow.num_stations; ++i) {
    EXPECT_FLOAT_EQ(single.at(i, 0), horizon_pred.at(i, 0));
    EXPECT_FLOAT_EQ(single.at(i, 1), horizon_pred.at(i, 4));
  }
  for (float v : horizon_pred.data()) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, 0.0f);
  }
}

// --- Serialization ---

TEST(SerializeTest, RoundTripRestoresPredictions) {
  common::Rng rng(3);
  nn::Mlp mlp({4, 8, 2}, &rng);
  const Tensor input = Tensor::RandomUniform({3, 4}, -1, 1, &rng);
  const Tensor before = mlp.Forward(Variable::Constant(input)).value();

  const std::string path = ::testing::TempDir() + "/mlp.ckpt";
  ASSERT_TRUE(nn::SaveParameters(mlp, path).ok());

  // Perturb all parameters, then restore.
  for (auto& p : mlp.parameters()) {
    p.SetValue(tensor::AddScalar(p.value(), 1.0f));
  }
  EXPECT_FALSE(mlp.Forward(Variable::Constant(input)).value().AllClose(before));
  ASSERT_TRUE(nn::LoadParameters(path, &mlp).ok());
  EXPECT_TRUE(mlp.Forward(Variable::Constant(input)).value().AllClose(before));
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileFails) {
  common::Rng rng(4);
  nn::Mlp mlp({2, 2}, &rng);
  const Status st = nn::LoadParameters("/nonexistent/x.ckpt", &mlp);
  EXPECT_EQ(st.code(), StatusCode::kIoError);
}

TEST(SerializeTest, ShapeMismatchFails) {
  common::Rng rng(5);
  nn::Mlp small({2, 3, 2}, &rng);
  nn::Mlp large({4, 3, 2}, &rng);
  const std::string path = ::testing::TempDir() + "/mismatch.ckpt";
  ASSERT_TRUE(nn::SaveParameters(small, path).ok());
  const Status st = nn::LoadParameters(path, &large);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializeTest, CountMismatchFails) {
  common::Rng rng(6);
  nn::Mlp two_layers({2, 3, 2}, &rng);
  nn::Mlp three_layers({2, 3, 3, 2}, &rng);
  const std::string path = ::testing::TempDir() + "/count.ckpt";
  ASSERT_TRUE(nn::SaveParameters(two_layers, path).ok());
  EXPECT_FALSE(nn::LoadParameters(path, &three_layers).ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, CorruptMagicFails) {
  const std::string path = ::testing::TempDir() + "/bad.ckpt";
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTSTGNNxxxxxxxxxxxx";
  }
  common::Rng rng(7);
  nn::Mlp mlp({2, 2}, &rng);
  const Status st = nn::LoadParameters(path, &mlp);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializeTest, StgnnCheckpointRoundTrip) {
  const auto& flow = TestFlow();
  common::Rng rng(8);
  core::StgnnConfig config;
  config.short_term_slots = 8;
  config.long_term_days = 2;
  config.pcg_layers = 1;
  config.attention_heads = 2;
  core::StgnnDjdModel model(flow.num_stations, config, &rng);
  const std::string path = ::testing::TempDir() + "/stgnn.ckpt";
  ASSERT_TRUE(nn::SaveParameters(model, path).ok());
  common::Rng rng2(99);  // different init
  core::StgnnDjdModel model2(flow.num_stations, config, &rng2);
  ASSERT_TRUE(nn::LoadParameters(path, &model2).ok());
  const auto p1 = model.parameters();
  const auto p2 = model2.parameters();
  ASSERT_EQ(p1.size(), p2.size());
  for (size_t i = 0; i < p1.size(); ++i) {
    EXPECT_TRUE(p1[i].value().AllClose(p2[i].value()));
  }
  std::remove(path.c_str());
}

// --- Initialisation schemes ---

TEST(InitSchemesTest, NearIdentityIsCloseToIdentity) {
  common::Rng rng(9);
  const Tensor w = nn::NearIdentity(6, 0.25f, &rng);
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 6; ++j) {
      if (i == j) {
        EXPECT_NEAR(w.at(i, j), 1.0f, 0.25f);
      } else {
        EXPECT_NEAR(w.at(i, j), 0.0f, 0.25f);
      }
    }
  }
  // A vector passed through is roughly preserved.
  const Tensor x = Tensor::RandomUniform({1, 6}, -1, 1, &rng);
  const Tensor y = tensor::MatMul(x, w);
  for (int j = 0; j < 6; ++j) EXPECT_NEAR(y.at(0, j), x.at(0, j), 0.8f);
}

TEST(InitSchemesTest, HeadMergeAveragesHeads) {
  common::Rng rng(10);
  const int heads = 4;
  const int n = 5;
  const Tensor w = nn::HeadMergeInit(heads, n, 0.0f, &rng);  // no noise
  // Concatenating h copies of the same matrix and multiplying recovers it.
  const Tensor block = Tensor::RandomUniform({n, n}, -1, 1, &rng);
  std::vector<Tensor> copies(heads, block);
  const Tensor merged = tensor::MatMul(tensor::Concat(copies, 1), w);
  EXPECT_TRUE(merged.AllClose(block, 1e-4f));
}

// --- Optimizer learning-rate control ---

TEST(AdamLrTest, SetLearningRateTakesEffect) {
  Variable x = Variable::Parameter(Tensor::Scalar(10.0f));
  nn::Adam opt({x}, 0.1f);
  EXPECT_FLOAT_EQ(opt.learning_rate(), 0.1f);
  opt.ZeroGrad();
  ag::Square(x).Backward();
  opt.Step();
  const float step1 = 10.0f - x.value().item();
  EXPECT_GT(step1, 0.0f);
  opt.set_learning_rate(1e-6f);
  const float before = x.value().item();
  opt.ZeroGrad();
  ag::Square(x).Backward();
  opt.Step();
  EXPECT_NEAR(x.value().item(), before, 1e-4f);
}

// --- Simulator non-stationarity knob ---

TEST(ActivityTest, StationaryCityIsEasierForHistoricalAverage) {
  data::CityConfig moving = data::CityConfig::Tiny();
  moving.num_days = 16;
  data::CityConfig still = moving;
  still.daily_activity_sigma = 0.0;
  still.block_activity_sigma = 0.0;
  still.popularity_drift_sigma = 0.0;
  const auto flow_moving =
      data::BuildFlowDataset(data::CitySimulator(moving).Generate());
  const auto flow_still =
      data::BuildFlowDataset(data::CitySimulator(still).Generate());
  // Variance of total demand across days at the same slot should be larger
  // in the non-stationary city.
  auto slot_variance = [](const data::FlowDataset& flow) {
    const int slot = 34;  // 08:30
    std::vector<double> day_totals;
    for (int t = slot; t < flow.num_slots; t += flow.slots_per_day) {
      double total = 0.0;
      for (int i = 0; i < flow.num_stations; ++i) {
        total += flow.demand.at(t, i);
      }
      day_totals.push_back(total);
    }
    double mean = 0.0;
    for (double v : day_totals) mean += v;
    mean /= day_totals.size();
    double var = 0.0;
    for (double v : day_totals) var += (v - mean) * (v - mean);
    return var / day_totals.size();
  };
  EXPECT_GT(slot_variance(flow_moving), slot_variance(flow_still) * 1.5);
}

}  // namespace
}  // namespace stgnn
