// Tests for the sparse (CSR) execution path: structure round-trips, the
// bitwise sparse-vs-dense parity contract of SpMM and the CSR neighbour
// max (at every thread count), finite-difference gradchecks through
// ag::SparseMatMul, the dense/sparse dispatch inside the GNN layers, and
// the FCG edge-mask semantics that the CSR view is built from.

#include <cstring>
#include <functional>
#include <memory>
#include <vector>

#include "autograd/ops.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/aggregators.h"
#include "core/graph_generator.h"
#include "gradcheck.h"
#include "gtest/gtest.h"
#include "tensor/csr.h"
#include "tensor/tensor.h"

namespace stgnn {
namespace {

using autograd::Variable;
namespace ag = stgnn::autograd;
using tensor::Csr;
using tensor::Tensor;

constexpr int kThreadCounts[] = {1, 2, 7};

class ThreadGuard {
 public:
  ThreadGuard() : saved_(common::GetNumThreads()) {}
  ~ThreadGuard() { common::SetNumThreads(saved_); }

 private:
  int saved_;
};

bool BitIdentical(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) return false;
  if (a.size() == 0) return true;
  return std::memcmp(a.data().data(), b.data().data(),
                     a.data().size() * sizeof(float)) == 0;
}

void ExpectThreadCountInvariant(const std::function<Tensor()>& fn) {
  ThreadGuard guard;
  common::SetNumThreads(1);
  const Tensor serial = fn();
  for (int threads : kThreadCounts) {
    common::SetNumThreads(threads);
    const Tensor parallel = fn();
    EXPECT_TRUE(BitIdentical(serial, parallel))
        << "kernel diverges at " << threads << " threads";
  }
}

// Random [rows, cols] matrix where roughly `density` of the entries are
// nonzero (the rest exact zeros), so Csr::FromDense captures its support.
Tensor RandomSparse(int rows, int cols, float density, common::Rng* rng) {
  Tensor t = Tensor::RandomNormal({rows, cols}, 0, 1, rng);
  const Tensor keep = Tensor::RandomUniform({rows, cols}, 0, 1, rng);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      if (keep.at(i, j) >= density) t.at(i, j) = 0.0f;
    }
  }
  return t;
}

TEST(CsrTest, FromDenseRoundTripAndStructure) {
  common::Rng rng(101);
  const Tensor dense = RandomSparse(23, 31, 0.2f, &rng);
  const Csr csr = Csr::FromDense(dense);
  EXPECT_EQ(csr.rows(), 23);
  EXPECT_EQ(csr.cols(), 31);
  EXPECT_TRUE(BitIdentical(csr.ToDense(), dense));
  // row_ptr is monotone and col_idx ascends strictly within each row.
  int64_t expected_nnz = 0;
  for (int64_t e = 0; e < dense.size(); ++e) {
    if (dense.flat(e) != 0.0f) ++expected_nnz;
  }
  EXPECT_EQ(csr.nnz(), expected_nnz);
  ASSERT_EQ(static_cast<int>(csr.row_ptr().size()), csr.rows() + 1);
  EXPECT_EQ(csr.row_ptr().front(), 0);
  EXPECT_EQ(csr.row_ptr().back(), csr.nnz());
  for (int i = 0; i < csr.rows(); ++i) {
    EXPECT_LE(csr.row_ptr()[i], csr.row_ptr()[i + 1]);
    for (int e = csr.row_ptr()[i] + 1; e < csr.row_ptr()[i + 1]; ++e) {
      EXPECT_LT(csr.col_idx()[e - 1], csr.col_idx()[e]);
    }
  }
  EXPECT_NEAR(csr.density(),
              static_cast<float>(expected_nnz) / (23.0f * 31.0f), 1e-6f);
}

TEST(CsrTest, ThresholdDropsSmallMagnitudes) {
  Tensor t({2, 3});
  t.at(0, 0) = 0.05f;
  t.at(0, 2) = -0.5f;
  t.at(1, 1) = -0.05f;
  const Csr csr = Csr::FromDense(t, 0.1f);
  EXPECT_EQ(csr.nnz(), 1);
  EXPECT_EQ(csr.col_idx()[0], 2);
  EXPECT_EQ(csr.values()[0], -0.5f);
}

TEST(CsrTest, DegenerateShapes) {
  // Empty rows, a fully dense pattern, and a single edge all round-trip.
  Tensor empty_rows = Tensor::Zeros({4, 5});
  empty_rows.at(2, 3) = 7.0f;  // rows 0, 1, 3 are empty
  const Csr single = Csr::FromDense(empty_rows);
  EXPECT_EQ(single.nnz(), 1);
  EXPECT_TRUE(BitIdentical(single.ToDense(), empty_rows));

  common::Rng rng(102);
  const Tensor full = Tensor::RandomNormal({6, 6}, 0, 1, &rng);
  const Csr all = Csr::FromDense(full);
  EXPECT_EQ(all.nnz(), 36);
  EXPECT_NEAR(all.density(), 1.0f, 1e-6f);
  EXPECT_TRUE(BitIdentical(all.ToDense(), full));

  const Csr none = Csr::FromDense(Tensor::Zeros({3, 3}));
  EXPECT_EQ(none.nnz(), 0);
  EXPECT_EQ(none.density(), 0.0f);
  EXPECT_TRUE(BitIdentical(none.ToDense(), Tensor::Zeros({3, 3})));
}

TEST(CsrTest, TransposedMatchesDenseTranspose) {
  common::Rng rng(103);
  const Tensor dense = RandomSparse(17, 29, 0.15f, &rng);
  const Csr csr = Csr::FromDense(dense);
  const Csr t = csr.Transposed();
  EXPECT_EQ(t.rows(), 29);
  EXPECT_EQ(t.cols(), 17);
  EXPECT_TRUE(BitIdentical(t.ToDense(), dense.Transpose()));
  // Substituted values permute with the pattern.
  std::vector<float> doubled = csr.values();
  for (float& v : doubled) v *= 2.0f;
  const Tensor td = csr.Transposed(doubled).ToDense();
  EXPECT_TRUE(td.AllClose(tensor::MulScalar(dense.Transpose(), 2.0f), 0.0f));
}

TEST(CsrTest, GatherValuesReadsPatternPositions) {
  common::Rng rng(104);
  const Tensor dense = RandomSparse(9, 11, 0.3f, &rng);
  const Csr csr = Csr::FromDense(dense);
  const Tensor other = Tensor::RandomNormal({9, 11}, 0, 1, &rng);
  const std::vector<float> gathered = csr.GatherValues(other);
  ASSERT_EQ(static_cast<int64_t>(gathered.size()), csr.nnz());
  for (int i = 0; i < csr.rows(); ++i) {
    for (int e = csr.row_ptr()[i]; e < csr.row_ptr()[i + 1]; ++e) {
      EXPECT_EQ(gathered[e], other.at(i, csr.col_idx()[e]));
    }
  }
}

// The core contract: SpMM over a CSR pattern is bit-identical to dense
// MatMul with the zeros materialised, at every thread count, for shapes on
// both sides of the parallel grain.
TEST(SpmmTest, ForwardBitwiseMatchesDense) {
  common::Rng rng(105);
  const struct {
    int m, k, f;
    float density;
  } cases[] = {{1, 1, 1, 1.0f},   {5, 7, 3, 0.4f},   {37, 37, 16, 0.1f},
               {64, 64, 64, 0.05f}, {128, 96, 33, 0.25f}, {200, 200, 1, 0.02f}};
  for (const auto& c : cases) {
    const Tensor a = RandomSparse(c.m, c.k, c.density, &rng);
    const Tensor x = Tensor::RandomNormal({c.k, c.f}, 0, 1, &rng);
    const Csr csr = Csr::FromDense(a);
    ThreadGuard guard;
    for (int threads : kThreadCounts) {
      common::SetNumThreads(threads);
      const Tensor sparse = tensor::SpMM(csr, x);
      const Tensor dense = tensor::MatMul(a, x);
      EXPECT_TRUE(BitIdentical(sparse, dense))
          << "m=" << c.m << " k=" << c.k << " f=" << c.f
          << " density=" << c.density << " threads=" << threads;
    }
    ExpectThreadCountInvariant([&] { return tensor::SpMM(csr, x); });
  }
}

TEST(SpmmTest, EmptyRowsYieldZeroOutputRows) {
  common::Rng rng(106);
  Tensor a = Tensor::Zeros({5, 4});
  a.at(1, 2) = 3.0f;  // single edge; rows 0, 2, 3, 4 empty
  const Tensor x = Tensor::RandomNormal({4, 6}, 0, 1, &rng);
  const Tensor y = tensor::SpMM(Csr::FromDense(a), x);
  EXPECT_TRUE(BitIdentical(y, tensor::MatMul(a, x)));
  for (int c = 0; c < 6; ++c) {
    EXPECT_EQ(y.at(0, c), 0.0f);
    EXPECT_EQ(y.at(1, c), 3.0f * x.at(2, c));
  }
}

// Backward of the differentiable-A overload: dX must match the dense
// backward bitwise; dA must match at the pattern's nnz positions and be
// exactly zero off-pattern (the model's mask multiply annihilates those
// entries downstream, so parameter gradients are unchanged).
TEST(SpmmTest, BackwardBitwiseMatchesDense) {
  common::Rng rng(107);
  const int m = 43, k = 39, f = 21;
  const Tensor a = RandomSparse(m, k, 0.15f, &rng);
  const Tensor x = Tensor::RandomNormal({k, f}, 0, 1, &rng);
  const Tensor w = Tensor::RandomNormal({m, f}, 0, 1, &rng);
  const auto pattern = std::make_shared<const Csr>(Csr::FromDense(a));

  auto run = [&](bool sparse, Tensor* da, Tensor* dx) {
    Variable av = Variable::Parameter(a);
    Variable xv = Variable::Parameter(x);
    Variable y = sparse ? ag::SparseMatMul(av, xv, pattern)
                        : ag::MatMul(av, xv);
    // Non-uniform downstream weighting exercises a structured grad.
    ag::SumAll(ag::Mul(y, Variable::Constant(w))).Backward();
    *da = av.grad();
    *dx = xv.grad();
    return y.value();
  };

  ThreadGuard guard;
  for (int threads : kThreadCounts) {
    common::SetNumThreads(threads);
    Tensor da_dense, dx_dense, da_sparse, dx_sparse;
    const Tensor y_dense = run(false, &da_dense, &dx_dense);
    const Tensor y_sparse = run(true, &da_sparse, &dx_sparse);
    EXPECT_TRUE(BitIdentical(y_sparse, y_dense)) << threads << " threads";
    EXPECT_TRUE(BitIdentical(dx_sparse, dx_dense)) << threads << " threads";
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < k; ++j) {
        if (a.at(i, j) != 0.0f) {
          EXPECT_EQ(da_sparse.at(i, j), da_dense.at(i, j))
              << "nnz grad mismatch at (" << i << ", " << j << ")";
        } else {
          EXPECT_EQ(da_sparse.at(i, j), 0.0f)
              << "off-pattern grad at (" << i << ", " << j << ")";
        }
      }
    }
  }
  // And the sparse backward is itself thread-count invariant.
  ExpectThreadCountInvariant([&] {
    Tensor da, dx;
    run(true, &da, &dx);
    return dx;
  });
  ExpectThreadCountInvariant([&] {
    Tensor da, dx;
    run(true, &da, &dx);
    return da;
  });
}

TEST(SpmmGradcheckTest, DifferentiableAAndX) {
  common::Rng rng(108);
  const Tensor a = RandomSparse(5, 6, 0.5f, &rng);
  const auto pattern = std::make_shared<const Csr>(Csr::FromDense(a));
  testing::ExpectGradientsClose(
      [&pattern](const std::vector<Variable>& inputs) {
        return ag::MeanAll(
            ag::Square(ag::SparseMatMul(inputs[0], inputs[1], pattern)));
      },
      {a, Tensor::RandomNormal({6, 4}, 0, 1, &rng)});
}

TEST(SpmmGradcheckTest, ConstantA) {
  common::Rng rng(109);
  const Tensor a = RandomSparse(6, 5, 0.4f, &rng);
  const auto csr = std::make_shared<const Csr>(Csr::FromDense(a));
  testing::ExpectGradientsClose(
      [&csr](const std::vector<Variable>& inputs) {
        return ag::MeanAll(ag::Square(ag::SparseMatMul(csr, inputs[0])));
      },
      {Tensor::RandomNormal({5, 3}, 0, 1, &rng)});
}

TEST(SparseNeighborMaxTest, ForwardAndBackwardMatchDense) {
  common::Rng rng(110);
  const int n = 41, f = 13;
  const Tensor h = Tensor::RandomNormal({n, f}, 0, 1, &rng);
  Tensor mask = Tensor::Zeros({n, n});
  for (int i = 0; i < n; ++i) {
    mask.at(i, i) = 1.0f;  // self-loops, like the FCG
    for (int j = 0; j < n; ++j) {
      if ((i * 13 + j * 7) % 9 == 0) mask.at(i, j) = 1.0f;
    }
  }
  const auto pattern = std::make_shared<const Csr>(Csr::FromDense(mask));

  ThreadGuard guard;
  for (int threads : kThreadCounts) {
    common::SetNumThreads(threads);
    Variable hd = Variable::Parameter(h);
    Variable hs = Variable::Parameter(h);
    Variable dense = core::MaskedNeighborMax(hd, mask);
    Variable sparse = core::MaskedNeighborMax(hs, pattern);
    EXPECT_TRUE(BitIdentical(sparse.value(), dense.value()));
    ag::SumAll(dense).Backward();
    ag::SumAll(sparse).Backward();
    EXPECT_TRUE(BitIdentical(hs.grad(), hd.grad()));
  }
  ExpectThreadCountInvariant([&] {
    return core::MaskedNeighborMax(Variable::Constant(h), pattern).value();
  });
}

TEST(SparseNeighborMaxTest, EmptyRowsAndTies) {
  common::Rng rng(111);
  // Row 0 has no neighbours; rows 1 and 2 both see rows 1 and 2, whose
  // features are identical, so the argmax tie must resolve to the first
  // (lowest-index) neighbour in both paths.
  const int n = 3, f = 2;
  Tensor h({n, f});
  h.at(1, 0) = 4.0f;
  h.at(1, 1) = -1.0f;
  h.at(2, 0) = 4.0f;
  h.at(2, 1) = -1.0f;
  Tensor mask = Tensor::Zeros({n, n});
  mask.at(1, 1) = mask.at(1, 2) = 1.0f;
  mask.at(2, 1) = mask.at(2, 2) = 1.0f;
  const auto pattern = std::make_shared<const Csr>(Csr::FromDense(mask));

  Variable hd = Variable::Parameter(h);
  Variable hs = Variable::Parameter(h);
  Variable dense = core::MaskedNeighborMax(hd, mask);
  Variable sparse = core::MaskedNeighborMax(hs, pattern);
  EXPECT_TRUE(BitIdentical(sparse.value(), dense.value()));
  for (int c = 0; c < f; ++c) EXPECT_EQ(sparse.value().at(0, c), 0.0f);
  ag::SumAll(dense).Backward();
  ag::SumAll(sparse).Backward();
  EXPECT_TRUE(BitIdentical(hs.grad(), hd.grad()));
  // Ties went to row 1 (the first stored neighbour): it collects gradient
  // from both output rows; row 2 gets none.
  for (int c = 0; c < f; ++c) {
    EXPECT_EQ(hs.grad().at(1, c), 2.0f);
    EXPECT_EQ(hs.grad().at(2, c), 0.0f);
  }
}

TEST(SparseNeighborMaxGradcheckTest, FiniteDifferences) {
  common::Rng rng(112);
  const int n = 6, f = 4;
  Tensor mask = Tensor::Zeros({n, n});
  for (int i = 0; i < n; ++i) {
    mask.at(i, i) = 1.0f;
    mask.at(i, (i + 2) % n) = 1.0f;
  }
  const auto pattern = std::make_shared<const Csr>(Csr::FromDense(mask));
  testing::ExpectGradientsClose(
      [&pattern](const std::vector<Variable>& inputs) {
        return ag::MeanAll(
            ag::Square(core::MaskedNeighborMax(inputs[0], pattern)));
      },
      {Tensor::RandomNormal({n, f}, 0, 1, &rng)});
}

// The GNN layers must produce bit-identical outputs and gradients whether
// they run the dense kernels or dispatch to the CSR path.
TEST(LayerDispatchTest, LayersBitIdenticalAcrossPaths) {
  common::Rng rng(113);
  const int n = 24;
  Tensor mask = Tensor::Zeros({n, n});
  for (int i = 0; i < n; ++i) {
    mask.at(i, i) = 1.0f;
    for (int j = 0; j < n; ++j) {
      if ((i + 2 * j) % 5 == 0) mask.at(i, j) = 1.0f;
    }
  }
  const auto pattern = std::make_shared<const Csr>(Csr::FromDense(mask));
  const Tensor h = Tensor::RandomNormal({n, n}, 0, 0.5f, &rng);
  // Flow weights are zero off the edge set, as Eq. (10) guarantees.
  Tensor flow = RandomSparse(n, n, 1.0f, &rng);
  for (int64_t e = 0; e < flow.size(); ++e) {
    flow.flat(e) = mask.flat(e) != 0.0f ? std::fabs(flow.flat(e)) : 0.0f;
  }

  core::FlowGnnLayer flow_layer(n, &rng);
  core::MeanGnnLayer mean_layer(n, &rng);
  core::MaxGnnLayer max_layer(n, &rng);

  auto compare = [&](nn::Module* layer,
                     const std::function<Variable(const Variable&, bool)>& fwd) {
    auto run = [&](bool sparse, Tensor* dh, std::vector<Tensor>* dparams) {
      layer->ZeroGrad();
      Variable hv = Variable::Parameter(h);
      Variable out = fwd(hv, sparse);
      ag::SumAll(out).Backward();
      *dh = hv.grad();
      dparams->clear();
      for (const auto& p : layer->parameters()) dparams->push_back(p.grad());
      return out.value();
    };
    Tensor dh_dense, dh_sparse;
    std::vector<Tensor> dp_dense, dp_sparse;
    const Tensor y_dense = run(false, &dh_dense, &dp_dense);
    const Tensor y_sparse = run(true, &dh_sparse, &dp_sparse);
    EXPECT_TRUE(BitIdentical(y_sparse, y_dense));
    EXPECT_TRUE(BitIdentical(dh_sparse, dh_dense));
    ASSERT_EQ(dp_sparse.size(), dp_dense.size());
    for (size_t i = 0; i < dp_sparse.size(); ++i) {
      EXPECT_TRUE(BitIdentical(dp_sparse[i], dp_dense[i])) << "param " << i;
    }
  };

  const Variable flow_v = Variable::Constant(flow);
  compare(&flow_layer, [&](const Variable& hv, bool sparse) {
    return flow_layer.Forward(hv, flow_v, sparse ? pattern : nullptr);
  });
  compare(&mean_layer, [&](const Variable& hv, bool sparse) {
    return mean_layer.Forward(hv, mask, sparse ? pattern : nullptr);
  });
  compare(&max_layer, [&](const Variable& hv, bool sparse) {
    return max_layer.Forward(hv, mask, sparse ? pattern : nullptr);
  });
}

// Pins the FCG construction semantics the CSR view is derived from: edges
// exist iff Î(i,j) > 0 or Ô(j,i) > 0, self-loops are always present, the
// differentiable weights are row-normalised, and edge_csr is exactly the
// CSR of edge_mask.
TEST(FlowConvolutedGraphTest, EdgeMaskSemanticsAndCsrView) {
  common::Rng rng(114);
  const int n = 12;
  // Strictly positive features: ReLU passes them through, so every row of
  // the weight matrix has mass (at least the self-loop) and sums to ~1.
  const Tensor features = Tensor::RandomUniform({n, n}, 0.5f, 1.5f, &rng);
  Tensor inflow = Tensor::Zeros({n, n});
  Tensor outflow = Tensor::Zeros({n, n});
  inflow.at(0, 3) = 2.0f;   // edge 3 -> 0 via inflow
  inflow.at(5, 5) = 1.0f;   // redundant with the self-loop
  outflow.at(7, 2) = 4.0f;  // edge 7 -> 2 via outflow
  outflow.at(0, 3) = 1.0f;  // edge 0 -> 3

  const core::FlowConvolutedGraph graph = core::BuildFlowConvolutedGraph(
      Variable::Constant(features), Variable::Constant(inflow),
      Variable::Constant(outflow));

  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      const bool expect_edge =
          i == j || inflow.at(i, j) > 0.0f || outflow.at(j, i) > 0.0f;
      EXPECT_EQ(graph.edge_mask.at(i, j), expect_edge ? 1.0f : 0.0f)
          << "(" << i << ", " << j << ")";
    }
  }
  EXPECT_EQ(graph.edge_mask.at(0, 3), 1.0f);
  EXPECT_EQ(graph.edge_mask.at(2, 7), 1.0f);
  EXPECT_EQ(graph.edge_mask.at(3, 0), 1.0f);

  ASSERT_NE(graph.edge_csr, nullptr);
  EXPECT_TRUE(BitIdentical(graph.edge_csr->ToDense(), graph.edge_mask));
  // n self-loops + 3 distinct off-diagonal edges.
  EXPECT_EQ(graph.edge_csr->nnz(), n + 3);
  EXPECT_NEAR(graph.edge_csr->density(),
              static_cast<float>(n + 3) / (n * n), 1e-6f);

  // Weight rows are non-negative and sum to ~1 (Eq. (10) after ReLU).
  const Tensor& w = graph.weights.value();
  for (int i = 0; i < n; ++i) {
    float row_sum = 0.0f;
    for (int j = 0; j < n; ++j) {
      EXPECT_GE(w.at(i, j), 0.0f);
      if (graph.edge_mask.at(i, j) == 0.0f) {
        EXPECT_EQ(w.at(i, j), 0.0f);
      }
      row_sum += w.at(i, j);
    }
    EXPECT_NEAR(row_sum, 1.0f, 1e-3f);
  }
}

TEST(DensePatternMaskTest, MemoisedPerStationCount) {
  const Tensor& a = core::DensePatternMask(10);
  const Tensor& b = core::DensePatternMask(10);
  EXPECT_EQ(&a, &b) << "repeated calls must share one allocation";
  EXPECT_TRUE(a.AllClose(Tensor::Ones({10, 10}), 0.0f));
  const Tensor& c = core::DensePatternMask(4);
  EXPECT_NE(&a, &c);
  EXPECT_TRUE(c.AllClose(Tensor::Ones({4, 4}), 0.0f));
  // The first reference survives later inserts.
  EXPECT_TRUE(a.AllClose(Tensor::Ones({10, 10}), 0.0f));
}

}  // namespace
}  // namespace stgnn
