// Bitwise-parity suite for the runtime-dispatched SIMD microkernels
// (src/tensor/kernels/). The dispatch contract says every fp32 variant —
// scalar, AVX2, AVX-512 — produces bit-identical results, and that the
// thread-pool fan-out never changes bits either; these tests pin both
// claims by running the same inputs through every ISA the host supports at
// 1, 2, and 7 kernel threads and comparing raw float bits.
//
// Shapes are deliberately awkward (odd dims, just-past-tile sizes) so the
// vector kernels' remainder handling is on the hook, and a coverage test
// sweeps widths around every tile boundary to prove no dispatched kernel
// drops tail rows or columns. Finite-difference gradcheck runs through the
// dispatched kernels per ISA, and gradients themselves are compared
// bitwise across ISAs.

#include <cmath>
#include <cstring>
#include <limits>
#include <utility>
#include <vector>

#include "autograd/ops.h"
#include "common/cpuid.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "gradcheck.h"
#include "gtest/gtest.h"
#include "nn/optimizer.h"
#include "tensor/csr.h"
#include "tensor/kernels/kernels.h"
#include "tensor/quantized.h"
#include "tensor/tensor.h"

namespace stgnn {
namespace {

namespace ag = autograd;
using tensor::Tensor;

std::vector<common::Isa> AvailableIsas() {
  std::vector<common::Isa> isas = {common::Isa::kScalar};
  if (common::IsaSupported(common::Isa::kAvx2)) {
    isas.push_back(common::Isa::kAvx2);
  }
  if (common::IsaSupported(common::Isa::kAvx512)) {
    isas.push_back(common::Isa::kAvx512);
  }
  if (common::IsaSupported(common::Isa::kAvx512Vnni)) {
    isas.push_back(common::Isa::kAvx512Vnni);
  }
  return isas;
}

// Restores the ambient ISA and thread count when a test scope ends, so the
// per-test overrides cannot leak into other tests in this binary.
struct DispatchGuard {
  common::Isa isa = common::ActiveIsa();
  int threads = common::GetNumThreads();
  ~DispatchGuard() {
    common::SetIsa(isa);
    common::SetNumThreads(threads);
  }
};

Tensor RandomTensor(tensor::Shape shape, common::Rng* rng, float lo = -1.0f,
                    float hi = 1.0f) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.size(); ++i) {
    t.flat(i) = static_cast<float>(rng->Uniform(lo, hi));
  }
  return t;
}

::testing::AssertionResult BitsEqual(const Tensor& a, const Tensor& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "size " << a.size() << " vs " << b.size();
  }
  if (std::memcmp(a.data().data(), b.data().data(),
                  static_cast<size_t>(a.size()) * sizeof(float)) != 0) {
    for (int64_t i = 0; i < a.size(); ++i) {
      uint32_t ba, bb;
      std::memcpy(&ba, &a.data()[i], 4);
      std::memcpy(&bb, &b.data()[i], 4);
      if (ba != bb) {
        return ::testing::AssertionFailure()
               << "first differing element " << i << ": " << std::scientific
               << a.flat(i) << " vs " << b.flat(i);
      }
    }
  }
  return ::testing::AssertionSuccess();
}

constexpr int kThreadCounts[] = {1, 2, 7};

TEST(SimdKernels, MatMulBitwiseParityAcrossIsasAndThreadCounts) {
  DispatchGuard guard;
  // Small-path, panel-path, and just-past-tile shapes; odd dims exercise
  // every remainder branch of the vector kernels.
  const struct {
    int m, k, n;
  } kShapes[] = {{5, 13, 37}, {1, 100, 1}, {4, 64, 64},
                 {70, 65, 70}, {129, 64, 131}};
  for (const auto& s : kShapes) {
    common::Rng rng(1000 + s.m + s.k + s.n);
    const Tensor a = RandomTensor({s.m, s.k}, &rng);
    const Tensor b = RandomTensor({s.k, s.n}, &rng);
    common::SetIsa(common::Isa::kScalar);
    common::SetNumThreads(1);
    const Tensor reference = tensor::MatMul(a, b);
    for (int threads : kThreadCounts) {
      common::SetNumThreads(threads);
      for (common::Isa isa : AvailableIsas()) {
        common::SetIsa(isa);
        EXPECT_TRUE(BitsEqual(reference, tensor::MatMul(a, b)))
            << common::IsaName(isa) << " threads=" << threads << " shape "
            << s.m << "x" << s.k << "x" << s.n;
      }
    }
  }
}

TEST(SimdKernels, SpmmBitwiseParityAcrossIsasAndThreadCounts) {
  DispatchGuard guard;
  const struct {
    int m, k, f;
  } kShapes[] = {{9, 9, 5}, {33, 29, 37}, {65, 65, 64}};
  for (const auto& s : kShapes) {
    common::Rng rng(2000 + s.m + s.f);
    Tensor dense({s.m, s.k});
    for (int64_t i = 0; i < dense.size(); ++i) {
      if (rng.Bernoulli(0.3)) {
        dense.flat(i) = static_cast<float>(rng.Uniform(-1.0, 1.0));
      }
    }
    const tensor::Csr csr = tensor::Csr::FromDense(dense);
    const Tensor x = RandomTensor({s.k, s.f}, &rng);
    common::SetIsa(common::Isa::kScalar);
    common::SetNumThreads(1);
    const Tensor reference = tensor::SpMM(csr, x);
    for (int threads : kThreadCounts) {
      common::SetNumThreads(threads);
      for (common::Isa isa : AvailableIsas()) {
        common::SetIsa(isa);
        EXPECT_TRUE(BitsEqual(reference, tensor::SpMM(csr, x)))
            << common::IsaName(isa) << " threads=" << threads << " shape "
            << s.m << "x" << s.k << " f=" << s.f;
      }
    }
  }
}

TEST(SimdKernels, AdamKernelBitwiseParityAcrossIsas) {
  constexpr int64_t kLen = 1031;  // odd, so every vector width has a tail
  common::Rng rng(3000);
  std::vector<float> g(kLen), m0(kLen), v0(kLen), p0(kLen);
  for (int64_t i = 0; i < kLen; ++i) {
    g[i] = static_cast<float>(rng.Uniform(-1.0, 1.0));
    m0[i] = static_cast<float>(rng.Uniform(-0.1, 0.1));
    v0[i] = static_cast<float>(rng.Uniform(0.0, 0.1));
    p0[i] = static_cast<float>(rng.Uniform(-2.0, 2.0));
  }
  const float beta1 = 0.9f, beta2 = 0.999f;
  const float bias1 = 1.0f - beta1, bias2 = 1.0f - beta2;  // step 1
  for (const float* grad : {static_cast<const float*>(g.data()),
                            static_cast<const float*>(nullptr)}) {
    std::vector<float> mr = m0, vr = v0, pr = p0;
    tensor::kernels::ScalarAdamStep(grad, mr.data(), vr.data(), pr.data(), 0,
                                    kLen, beta1, beta2, bias1, bias2, 0.01f,
                                    1e-8f);
    for (common::Isa isa : AvailableIsas()) {
      const tensor::kernels::KernelTable& kt = tensor::kernels::TableFor(isa);
      std::vector<float> m = m0, v = v0, p = p0;
      kt.adam_step(grad, m.data(), v.data(), p.data(), 0, kLen, beta1, beta2,
                   bias1, bias2, 0.01f, 1e-8f);
      EXPECT_EQ(std::memcmp(m.data(), mr.data(), kLen * sizeof(float)), 0)
          << kt.name << (grad ? "" : " null-grad") << " m";
      EXPECT_EQ(std::memcmp(v.data(), vr.data(), kLen * sizeof(float)), 0)
          << kt.name << (grad ? "" : " null-grad") << " v";
      EXPECT_EQ(std::memcmp(p.data(), pr.data(), kLen * sizeof(float)), 0)
          << kt.name << (grad ? "" : " null-grad") << " p";
    }
  }
}

TEST(SimdKernels, AdamOptimizerBitwiseParityAcrossIsasAndThreadCounts) {
  DispatchGuard guard;
  common::Rng rng(4000);
  const Tensor w0 = RandomTensor({33, 17}, &rng);
  const Tensor a = RandomTensor({9, 33}, &rng);
  auto train_once = [&](common::Isa isa, int threads) {
    common::SetIsa(isa);
    common::SetNumThreads(threads);
    ag::Variable w = ag::Variable::Parameter(w0);
    nn::Adam optimizer({w}, 0.01f);
    for (int step = 0; step < 3; ++step) {
      ag::Variable loss =
          ag::SumAll(ag::MatMul(ag::Variable::Constant(a), w));
      w.node()->grad_initialized = false;  // zero-grad between steps
      loss.Backward();
      optimizer.Step();
    }
    return w.value();
  };
  const Tensor reference = train_once(common::Isa::kScalar, 1);
  for (int threads : kThreadCounts) {
    for (common::Isa isa : AvailableIsas()) {
      EXPECT_TRUE(BitsEqual(reference, train_once(isa, threads)))
          << common::IsaName(isa) << " threads=" << threads;
    }
  }
}

TEST(SimdKernels, QuantizedGemmBitwiseParityAcrossIsas) {
  DispatchGuard guard;
  const struct {
    int m, k, n;
  } kShapes[] = {{3, 9, 11}, {17, 31, 67}, {8, 64, 64}};
  for (const auto& s : kShapes) {
    common::Rng rng(5000 + s.n);
    const Tensor a = RandomTensor({s.m, s.k}, &rng);
    const Tensor w = RandomTensor({s.k, s.n}, &rng);
    const tensor::QuantizedTensor qw = tensor::QuantizeInt8(w);
    common::SetIsa(common::Isa::kScalar);
    const Tensor reference = tensor::QuantizedMatMul(a, qw);
    for (common::Isa isa : AvailableIsas()) {
      common::SetIsa(isa);
      // Integer accumulation is exact, so the int8 path is bitwise
      // identical across ISAs by construction.
      EXPECT_TRUE(BitsEqual(reference, tensor::QuantizedMatMul(a, qw)))
          << common::IsaName(isa) << " shape " << s.m << "x" << s.k << "x"
          << s.n;
    }
  }
}

// The VNNI tier is the AVX-512 table with only the int8 GEMM swapped for
// the vpdpbusd kernel; the fp32 entries must be the *same function
// pointers* so the fp32 parity argument transfers verbatim. Checkable on
// any x86 build — constructing the table does not execute VNNI code.
TEST(SimdKernels, VnniTableSharesFp32KernelsWithAvx512) {
#if defined(__x86_64__) || defined(_M_X64)
  const tensor::kernels::KernelTable& vnni =
      tensor::kernels::Avx512VnniKernels();
  const tensor::kernels::KernelTable& avx512 =
      tensor::kernels::Avx512Kernels();
  EXPECT_EQ(vnni.matmul_small, avx512.matmul_small);
  EXPECT_EQ(vnni.matmul_panel_rows, avx512.matmul_panel_rows);
  EXPECT_EQ(vnni.spmm_rows, avx512.spmm_rows);
  EXPECT_EQ(vnni.adam_step, avx512.adam_step);
  EXPECT_EQ(vnni.quantize_act_rows, avx512.quantize_act_rows);
  EXPECT_EQ(vnni.mm_small_flops, avx512.mm_small_flops);
  EXPECT_EQ(vnni.mm_chunk_flops, avx512.mm_chunk_flops);
  EXPECT_EQ(vnni.row_grain_ops, avx512.row_grain_ops);
  // When the compiler could target VNNI the qgemm entry is the vpdpbusd
  // kernel and the table self-identifies; otherwise the whole table
  // degrades to an alias of the AVX-512 one. Both are legal builds.
  if (vnni.isa == common::Isa::kAvx512Vnni) {
    EXPECT_STREQ(vnni.name, "avx512vnni");
    EXPECT_NE(vnni.qgemm_rows, avx512.qgemm_rows);
  } else {
    EXPECT_EQ(&vnni, &avx512);
  }
  EXPECT_EQ(&tensor::kernels::TableFor(common::Isa::kAvx512Vnni), &vnni);
#else
  GTEST_SKIP() << "non-x86 build carries only the scalar table";
#endif
}

// STGNN_ISA-style clamping for the new tier, then — only on hosts that
// actually have VNNI — a bitwise parity pin of the vpdpbusd qgemm against
// the scalar exact-s32 reference. On non-VNNI hosts the parity half skips
// cleanly after verifying the clamp.
TEST(SimdKernels, VnniClampsAndMatchesScalarQgemmBitwise) {
  DispatchGuard guard;
  common::Isa parsed;
  ASSERT_TRUE(common::ParseIsa("avx512vnni", &parsed));
  EXPECT_EQ(parsed, common::Isa::kAvx512Vnni);
  EXPECT_STREQ(common::IsaName(common::Isa::kAvx512Vnni), "avx512vnni");
  const common::Isa installed = common::SetIsa(common::Isa::kAvx512Vnni);
  if (!common::IsaSupported(common::Isa::kAvx512Vnni)) {
    // Requests above the host's capability clamp to DetectBestIsa, exactly
    // like STGNN_ISA=avx512 on an AVX2-only box.
    EXPECT_EQ(installed, common::DetectBestIsa());
    EXPECT_NE(installed, common::Isa::kAvx512Vnni);
    GTEST_SKIP() << "host lacks AVX-512 VNNI; clamp verified, qgemm parity "
                    "pinned on VNNI hosts";
  }
  EXPECT_EQ(installed, common::Isa::kAvx512Vnni);
  // Shapes hit the 4-row/64-column register tile, the 16-wide strip tail,
  // and the scalar column tail.
  const struct {
    int m, k, n;
  } kShapes[] = {{3, 9, 11}, {17, 31, 67}, {8, 64, 64}, {5, 129, 130}};
  for (const auto& s : kShapes) {
    common::Rng rng(7000 + s.n);
    const Tensor a = RandomTensor({s.m, s.k}, &rng);
    const Tensor w = RandomTensor({s.k, s.n}, &rng);
    const tensor::QuantizedTensor qw = tensor::QuantizeInt8(w);
    common::SetIsa(common::Isa::kScalar);
    const Tensor reference = tensor::QuantizedMatMul(a, qw);
    common::SetIsa(common::Isa::kAvx512Vnni);
    EXPECT_TRUE(BitsEqual(reference, tensor::QuantizedMatMul(a, qw)))
        << "vnni shape " << s.m << "x" << s.k << "x" << s.n;
  }
}

// No dispatched kernel may drop tail rows or columns: sweep widths around
// every vector-width and tile boundary and check each output element
// against a double-precision reference. Inputs are strictly positive so a
// skipped element (stuck at 0 or NaN) cannot masquerade as correct.
TEST(SimdKernels, RowAndColumnCoverageAtAwkwardShapes) {
  constexpr int kPanel = tensor::kernels::kMmPanel;
  const int kWidths[] = {1, 2, 3, 7, 8, 9, 15, 16, 17, 31, 33,
                         kPanel - 1, kPanel, kPanel + 1, 2 * kPanel + 2};
  const int kRows[] = {1, 3, 4, 5, 9};
  constexpr int kDepth = 17;
  common::Rng rng(6000);
  for (common::Isa isa : AvailableIsas()) {
    const tensor::kernels::KernelTable& kt = tensor::kernels::TableFor(isa);
    for (int m : kRows) {
      for (int n : kWidths) {
        const Tensor a = RandomTensor({m, kDepth}, &rng, 0.5f, 1.5f);
        const Tensor b = RandomTensor({kDepth, n}, &rng, 0.5f, 1.5f);
        std::vector<double> ref(static_cast<size_t>(m) * n, 0.0);
        for (int i = 0; i < m; ++i) {
          for (int p = 0; p < kDepth; ++p) {
            for (int j = 0; j < n; ++j) {
              ref[static_cast<size_t>(i) * n + j] +=
                  static_cast<double>(a.flat(i * kDepth + p)) *
                  b.flat(p * n + j);
            }
          }
        }
        auto expect_close = [&](const std::vector<float>& out,
                                const char* kernel) {
          for (size_t i = 0; i < ref.size(); ++i) {
            EXPECT_NEAR(out[i], ref[i], 1e-3 * std::fabs(ref[i]))
                << kt.name << " " << kernel << " m=" << m << " n=" << n
                << " element " << i;
          }
        };

        // matmul_small accumulates into a zeroed output.
        std::vector<float> small(static_cast<size_t>(m) * n, 0.0f);
        kt.matmul_small(a.data().data(), b.data().data(), small.data(), m,
                        kDepth, n);
        expect_close(small, "matmul_small");

        // matmul_panel_rows overwrites every element exactly once, so a NaN
        // sentinel catches any row or column the kernel never visited.
        const int num_panels = (n + kPanel - 1) / kPanel;
        std::vector<float> packed(
            static_cast<size_t>(num_panels) * kDepth * kPanel, 0.0f);
        for (int q = 0; q < num_panels; ++q) {
          const int j0 = q * kPanel;
          const int w = std::min(kPanel, n - j0);
          for (int p = 0; p < kDepth; ++p) {
            for (int j = 0; j < w; ++j) {
              packed[(static_cast<size_t>(q) * kDepth + p) * kPanel + j] =
                  b.flat(p * n + j0 + j);
            }
          }
        }
        std::vector<float> panel_out(
            static_cast<size_t>(m) * n,
            std::numeric_limits<float>::quiet_NaN());
        for (int q = 0; q < num_panels; ++q) {
          const int j0 = q * kPanel;
          const int w = std::min(kPanel, n - j0);
          kt.matmul_panel_rows(
              a.data().data(),
              packed.data() + static_cast<size_t>(q) * kDepth * kPanel,
              panel_out.data(), 0, m, kDepth, n, j0, w);
        }
        for (size_t i = 0; i < panel_out.size(); ++i) {
          EXPECT_FALSE(std::isnan(panel_out[i]))
              << kt.name << " matmul_panel_rows left element " << i
              << " unwritten at m=" << m << " n=" << n;
        }
        expect_close(panel_out, "matmul_panel_rows");

        // spmm_rows over a fully-dense pattern must agree with the same
        // reference (every row of the pattern is non-empty by
        // construction, so zeros cannot hide a skipped row).
        const tensor::Csr csr = tensor::Csr::FromDense(a);
        ASSERT_EQ(csr.nnz(), a.size());
        std::vector<float> spmm_out(static_cast<size_t>(m) * n, 0.0f);
        kt.spmm_rows(csr.row_ptr().data(), csr.col_idx().data(),
                     csr.values().data(), b.data().data(), spmm_out.data(),
                     0, m, n);
        expect_close(spmm_out, "spmm_rows");
      }
    }
  }
}

TEST(SimdKernels, GradientBitwiseParityAcrossIsas) {
  DispatchGuard guard;
  common::Rng rng(7000);
  // Big enough to take the packed panel path on every ISA's threshold.
  const Tensor av = RandomTensor({66, 62}, &rng);
  const Tensor bv = RandomTensor({62, 66}, &rng);
  auto grads_at = [&](common::Isa isa) {
    common::SetIsa(isa);
    ag::Variable a = ag::Variable::Parameter(av);
    ag::Variable b = ag::Variable::Parameter(bv);
    ag::SumAll(ag::MatMul(a, b)).Backward();
    return std::make_pair(a.grad(), b.grad());
  };
  common::SetNumThreads(1);
  const auto reference = grads_at(common::Isa::kScalar);
  for (int threads : kThreadCounts) {
    common::SetNumThreads(threads);
    for (common::Isa isa : AvailableIsas()) {
      const auto got = grads_at(isa);
      EXPECT_TRUE(BitsEqual(reference.first, got.first))
          << common::IsaName(isa) << " threads=" << threads << " grad a";
      EXPECT_TRUE(BitsEqual(reference.second, got.second))
          << common::IsaName(isa) << " threads=" << threads << " grad b";
    }
  }
}

TEST(SimdKernels, GradcheckThroughDispatchedKernels) {
  DispatchGuard guard;
  common::Rng rng(8000);
  const Tensor a = RandomTensor({7, 9}, &rng);
  const Tensor b = RandomTensor({9, 11}, &rng);
  for (common::Isa isa : AvailableIsas()) {
    common::SetIsa(isa);
    SCOPED_TRACE(common::IsaName(isa));
    stgnn::testing::ExpectGradientsClose(
        [](const std::vector<ag::Variable>& inputs) {
          return ag::SumAll(ag::MatMul(inputs[0], inputs[1]));
        },
        {a, b});
  }
}

}  // namespace
}  // namespace stgnn
