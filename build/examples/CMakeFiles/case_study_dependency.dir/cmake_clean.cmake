file(REMOVE_RECURSE
  "CMakeFiles/case_study_dependency.dir/case_study_dependency.cc.o"
  "CMakeFiles/case_study_dependency.dir/case_study_dependency.cc.o.d"
  "case_study_dependency"
  "case_study_dependency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/case_study_dependency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
