# Empty dependencies file for case_study_dependency.
# This may be replaced when dependencies are built.
