# Empty dependencies file for multi_step_forecast.
# This may be replaced when dependencies are built.
