# Empty compiler generated dependencies file for rebalancing_planner.
# This may be replaced when dependencies are built.
