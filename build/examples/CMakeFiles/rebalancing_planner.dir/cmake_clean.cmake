file(REMOVE_RECURSE
  "CMakeFiles/rebalancing_planner.dir/rebalancing_planner.cc.o"
  "CMakeFiles/rebalancing_planner.dir/rebalancing_planner.cc.o.d"
  "rebalancing_planner"
  "rebalancing_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rebalancing_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
