file(REMOVE_RECURSE
  "CMakeFiles/stgnn_common.dir/rng.cc.o"
  "CMakeFiles/stgnn_common.dir/rng.cc.o.d"
  "CMakeFiles/stgnn_common.dir/status.cc.o"
  "CMakeFiles/stgnn_common.dir/status.cc.o.d"
  "CMakeFiles/stgnn_common.dir/string_util.cc.o"
  "CMakeFiles/stgnn_common.dir/string_util.cc.o.d"
  "libstgnn_common.a"
  "libstgnn_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stgnn_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
