file(REMOVE_RECURSE
  "libstgnn_common.a"
)
