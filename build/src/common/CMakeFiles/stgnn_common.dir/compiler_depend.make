# Empty compiler generated dependencies file for stgnn_common.
# This may be replaced when dependencies are built.
