file(REMOVE_RECURSE
  "CMakeFiles/stgnn_autograd.dir/ops.cc.o"
  "CMakeFiles/stgnn_autograd.dir/ops.cc.o.d"
  "CMakeFiles/stgnn_autograd.dir/variable.cc.o"
  "CMakeFiles/stgnn_autograd.dir/variable.cc.o.d"
  "libstgnn_autograd.a"
  "libstgnn_autograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stgnn_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
