# Empty compiler generated dependencies file for stgnn_autograd.
# This may be replaced when dependencies are built.
