file(REMOVE_RECURSE
  "libstgnn_autograd.a"
)
