file(REMOVE_RECURSE
  "CMakeFiles/stgnn_tensor.dir/tensor.cc.o"
  "CMakeFiles/stgnn_tensor.dir/tensor.cc.o.d"
  "libstgnn_tensor.a"
  "libstgnn_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stgnn_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
