# Empty dependencies file for stgnn_tensor.
# This may be replaced when dependencies are built.
