file(REMOVE_RECURSE
  "libstgnn_tensor.a"
)
