file(REMOVE_RECURSE
  "libstgnn_eval.a"
)
