# Empty dependencies file for stgnn_eval.
# This may be replaced when dependencies are built.
