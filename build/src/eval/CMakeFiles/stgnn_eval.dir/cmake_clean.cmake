file(REMOVE_RECURSE
  "CMakeFiles/stgnn_eval.dir/experiment.cc.o"
  "CMakeFiles/stgnn_eval.dir/experiment.cc.o.d"
  "CMakeFiles/stgnn_eval.dir/metrics.cc.o"
  "CMakeFiles/stgnn_eval.dir/metrics.cc.o.d"
  "libstgnn_eval.a"
  "libstgnn_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stgnn_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
