# Empty compiler generated dependencies file for stgnn_nn.
# This may be replaced when dependencies are built.
