file(REMOVE_RECURSE
  "CMakeFiles/stgnn_nn.dir/init.cc.o"
  "CMakeFiles/stgnn_nn.dir/init.cc.o.d"
  "CMakeFiles/stgnn_nn.dir/linear.cc.o"
  "CMakeFiles/stgnn_nn.dir/linear.cc.o.d"
  "CMakeFiles/stgnn_nn.dir/loss.cc.o"
  "CMakeFiles/stgnn_nn.dir/loss.cc.o.d"
  "CMakeFiles/stgnn_nn.dir/module.cc.o"
  "CMakeFiles/stgnn_nn.dir/module.cc.o.d"
  "CMakeFiles/stgnn_nn.dir/optimizer.cc.o"
  "CMakeFiles/stgnn_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/stgnn_nn.dir/rnn.cc.o"
  "CMakeFiles/stgnn_nn.dir/rnn.cc.o.d"
  "CMakeFiles/stgnn_nn.dir/serialize.cc.o"
  "CMakeFiles/stgnn_nn.dir/serialize.cc.o.d"
  "libstgnn_nn.a"
  "libstgnn_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stgnn_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
