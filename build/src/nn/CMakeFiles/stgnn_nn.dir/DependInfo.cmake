
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/init.cc" "src/nn/CMakeFiles/stgnn_nn.dir/init.cc.o" "gcc" "src/nn/CMakeFiles/stgnn_nn.dir/init.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/nn/CMakeFiles/stgnn_nn.dir/linear.cc.o" "gcc" "src/nn/CMakeFiles/stgnn_nn.dir/linear.cc.o.d"
  "/root/repo/src/nn/loss.cc" "src/nn/CMakeFiles/stgnn_nn.dir/loss.cc.o" "gcc" "src/nn/CMakeFiles/stgnn_nn.dir/loss.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/nn/CMakeFiles/stgnn_nn.dir/module.cc.o" "gcc" "src/nn/CMakeFiles/stgnn_nn.dir/module.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/nn/CMakeFiles/stgnn_nn.dir/optimizer.cc.o" "gcc" "src/nn/CMakeFiles/stgnn_nn.dir/optimizer.cc.o.d"
  "/root/repo/src/nn/rnn.cc" "src/nn/CMakeFiles/stgnn_nn.dir/rnn.cc.o" "gcc" "src/nn/CMakeFiles/stgnn_nn.dir/rnn.cc.o.d"
  "/root/repo/src/nn/serialize.cc" "src/nn/CMakeFiles/stgnn_nn.dir/serialize.cc.o" "gcc" "src/nn/CMakeFiles/stgnn_nn.dir/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/autograd/CMakeFiles/stgnn_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/stgnn_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/stgnn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
