file(REMOVE_RECURSE
  "libstgnn_nn.a"
)
