# Empty dependencies file for stgnn_data.
# This may be replaced when dependencies are built.
