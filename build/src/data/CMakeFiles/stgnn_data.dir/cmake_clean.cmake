file(REMOVE_RECURSE
  "CMakeFiles/stgnn_data.dir/city_simulator.cc.o"
  "CMakeFiles/stgnn_data.dir/city_simulator.cc.o.d"
  "CMakeFiles/stgnn_data.dir/flow_dataset.cc.o"
  "CMakeFiles/stgnn_data.dir/flow_dataset.cc.o.d"
  "CMakeFiles/stgnn_data.dir/window.cc.o"
  "CMakeFiles/stgnn_data.dir/window.cc.o.d"
  "libstgnn_data.a"
  "libstgnn_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stgnn_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
