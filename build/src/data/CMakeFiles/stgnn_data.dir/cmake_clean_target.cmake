file(REMOVE_RECURSE
  "libstgnn_data.a"
)
