file(REMOVE_RECURSE
  "CMakeFiles/stgnn_graph.dir/graph.cc.o"
  "CMakeFiles/stgnn_graph.dir/graph.cc.o.d"
  "CMakeFiles/stgnn_graph.dir/layers.cc.o"
  "CMakeFiles/stgnn_graph.dir/layers.cc.o.d"
  "libstgnn_graph.a"
  "libstgnn_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stgnn_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
