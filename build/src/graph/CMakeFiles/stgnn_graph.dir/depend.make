# Empty dependencies file for stgnn_graph.
# This may be replaced when dependencies are built.
