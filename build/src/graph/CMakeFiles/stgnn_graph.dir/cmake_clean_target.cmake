file(REMOVE_RECURSE
  "libstgnn_graph.a"
)
