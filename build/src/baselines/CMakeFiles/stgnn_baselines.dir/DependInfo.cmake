
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/arima.cc" "src/baselines/CMakeFiles/stgnn_baselines.dir/arima.cc.o" "gcc" "src/baselines/CMakeFiles/stgnn_baselines.dir/arima.cc.o.d"
  "/root/repo/src/baselines/astgcn.cc" "src/baselines/CMakeFiles/stgnn_baselines.dir/astgcn.cc.o" "gcc" "src/baselines/CMakeFiles/stgnn_baselines.dir/astgcn.cc.o.d"
  "/root/repo/src/baselines/gbike.cc" "src/baselines/CMakeFiles/stgnn_baselines.dir/gbike.cc.o" "gcc" "src/baselines/CMakeFiles/stgnn_baselines.dir/gbike.cc.o.d"
  "/root/repo/src/baselines/gbrt.cc" "src/baselines/CMakeFiles/stgnn_baselines.dir/gbrt.cc.o" "gcc" "src/baselines/CMakeFiles/stgnn_baselines.dir/gbrt.cc.o.d"
  "/root/repo/src/baselines/gcnn.cc" "src/baselines/CMakeFiles/stgnn_baselines.dir/gcnn.cc.o" "gcc" "src/baselines/CMakeFiles/stgnn_baselines.dir/gcnn.cc.o.d"
  "/root/repo/src/baselines/ha.cc" "src/baselines/CMakeFiles/stgnn_baselines.dir/ha.cc.o" "gcc" "src/baselines/CMakeFiles/stgnn_baselines.dir/ha.cc.o.d"
  "/root/repo/src/baselines/mgnn.cc" "src/baselines/CMakeFiles/stgnn_baselines.dir/mgnn.cc.o" "gcc" "src/baselines/CMakeFiles/stgnn_baselines.dir/mgnn.cc.o.d"
  "/root/repo/src/baselines/mlp_model.cc" "src/baselines/CMakeFiles/stgnn_baselines.dir/mlp_model.cc.o" "gcc" "src/baselines/CMakeFiles/stgnn_baselines.dir/mlp_model.cc.o.d"
  "/root/repo/src/baselines/neural_base.cc" "src/baselines/CMakeFiles/stgnn_baselines.dir/neural_base.cc.o" "gcc" "src/baselines/CMakeFiles/stgnn_baselines.dir/neural_base.cc.o.d"
  "/root/repo/src/baselines/recurrent_models.cc" "src/baselines/CMakeFiles/stgnn_baselines.dir/recurrent_models.cc.o" "gcc" "src/baselines/CMakeFiles/stgnn_baselines.dir/recurrent_models.cc.o.d"
  "/root/repo/src/baselines/stsgcn.cc" "src/baselines/CMakeFiles/stgnn_baselines.dir/stsgcn.cc.o" "gcc" "src/baselines/CMakeFiles/stgnn_baselines.dir/stsgcn.cc.o.d"
  "/root/repo/src/baselines/window_features.cc" "src/baselines/CMakeFiles/stgnn_baselines.dir/window_features.cc.o" "gcc" "src/baselines/CMakeFiles/stgnn_baselines.dir/window_features.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/stgnn_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/stgnn_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/stgnn_data.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/stgnn_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/stgnn_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/stgnn_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/stgnn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
