file(REMOVE_RECURSE
  "CMakeFiles/stgnn_baselines.dir/arima.cc.o"
  "CMakeFiles/stgnn_baselines.dir/arima.cc.o.d"
  "CMakeFiles/stgnn_baselines.dir/astgcn.cc.o"
  "CMakeFiles/stgnn_baselines.dir/astgcn.cc.o.d"
  "CMakeFiles/stgnn_baselines.dir/gbike.cc.o"
  "CMakeFiles/stgnn_baselines.dir/gbike.cc.o.d"
  "CMakeFiles/stgnn_baselines.dir/gbrt.cc.o"
  "CMakeFiles/stgnn_baselines.dir/gbrt.cc.o.d"
  "CMakeFiles/stgnn_baselines.dir/gcnn.cc.o"
  "CMakeFiles/stgnn_baselines.dir/gcnn.cc.o.d"
  "CMakeFiles/stgnn_baselines.dir/ha.cc.o"
  "CMakeFiles/stgnn_baselines.dir/ha.cc.o.d"
  "CMakeFiles/stgnn_baselines.dir/mgnn.cc.o"
  "CMakeFiles/stgnn_baselines.dir/mgnn.cc.o.d"
  "CMakeFiles/stgnn_baselines.dir/mlp_model.cc.o"
  "CMakeFiles/stgnn_baselines.dir/mlp_model.cc.o.d"
  "CMakeFiles/stgnn_baselines.dir/neural_base.cc.o"
  "CMakeFiles/stgnn_baselines.dir/neural_base.cc.o.d"
  "CMakeFiles/stgnn_baselines.dir/recurrent_models.cc.o"
  "CMakeFiles/stgnn_baselines.dir/recurrent_models.cc.o.d"
  "CMakeFiles/stgnn_baselines.dir/stsgcn.cc.o"
  "CMakeFiles/stgnn_baselines.dir/stsgcn.cc.o.d"
  "CMakeFiles/stgnn_baselines.dir/window_features.cc.o"
  "CMakeFiles/stgnn_baselines.dir/window_features.cc.o.d"
  "libstgnn_baselines.a"
  "libstgnn_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stgnn_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
