# Empty compiler generated dependencies file for stgnn_baselines.
# This may be replaced when dependencies are built.
