file(REMOVE_RECURSE
  "libstgnn_baselines.a"
)
