file(REMOVE_RECURSE
  "CMakeFiles/stgnn_core.dir/aggregators.cc.o"
  "CMakeFiles/stgnn_core.dir/aggregators.cc.o.d"
  "CMakeFiles/stgnn_core.dir/config.cc.o"
  "CMakeFiles/stgnn_core.dir/config.cc.o.d"
  "CMakeFiles/stgnn_core.dir/flow_convolution.cc.o"
  "CMakeFiles/stgnn_core.dir/flow_convolution.cc.o.d"
  "CMakeFiles/stgnn_core.dir/graph_generator.cc.o"
  "CMakeFiles/stgnn_core.dir/graph_generator.cc.o.d"
  "CMakeFiles/stgnn_core.dir/stgnn_djd.cc.o"
  "CMakeFiles/stgnn_core.dir/stgnn_djd.cc.o.d"
  "libstgnn_core.a"
  "libstgnn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stgnn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
