file(REMOVE_RECURSE
  "libstgnn_core.a"
)
