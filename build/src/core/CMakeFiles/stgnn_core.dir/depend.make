# Empty dependencies file for stgnn_core.
# This may be replaced when dependencies are built.
