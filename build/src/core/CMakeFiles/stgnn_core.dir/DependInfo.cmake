
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aggregators.cc" "src/core/CMakeFiles/stgnn_core.dir/aggregators.cc.o" "gcc" "src/core/CMakeFiles/stgnn_core.dir/aggregators.cc.o.d"
  "/root/repo/src/core/config.cc" "src/core/CMakeFiles/stgnn_core.dir/config.cc.o" "gcc" "src/core/CMakeFiles/stgnn_core.dir/config.cc.o.d"
  "/root/repo/src/core/flow_convolution.cc" "src/core/CMakeFiles/stgnn_core.dir/flow_convolution.cc.o" "gcc" "src/core/CMakeFiles/stgnn_core.dir/flow_convolution.cc.o.d"
  "/root/repo/src/core/graph_generator.cc" "src/core/CMakeFiles/stgnn_core.dir/graph_generator.cc.o" "gcc" "src/core/CMakeFiles/stgnn_core.dir/graph_generator.cc.o.d"
  "/root/repo/src/core/stgnn_djd.cc" "src/core/CMakeFiles/stgnn_core.dir/stgnn_djd.cc.o" "gcc" "src/core/CMakeFiles/stgnn_core.dir/stgnn_djd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/stgnn_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/stgnn_data.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/stgnn_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/stgnn_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/stgnn_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/stgnn_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/stgnn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
