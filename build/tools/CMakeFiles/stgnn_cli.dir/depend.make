# Empty dependencies file for stgnn_cli.
# This may be replaced when dependencies are built.
