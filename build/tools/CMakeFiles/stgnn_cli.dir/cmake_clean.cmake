file(REMOVE_RECURSE
  "CMakeFiles/stgnn_cli.dir/stgnn_cli.cc.o"
  "CMakeFiles/stgnn_cli.dir/stgnn_cli.cc.o.d"
  "stgnn_cli"
  "stgnn_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stgnn_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
