file(REMOVE_RECURSE
  "CMakeFiles/fig10_12_case_study.dir/fig10_12_case_study.cc.o"
  "CMakeFiles/fig10_12_case_study.dir/fig10_12_case_study.cc.o.d"
  "fig10_12_case_study"
  "fig10_12_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_12_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
