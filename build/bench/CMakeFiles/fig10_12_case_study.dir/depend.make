# Empty dependencies file for fig10_12_case_study.
# This may be replaced when dependencies are built.
