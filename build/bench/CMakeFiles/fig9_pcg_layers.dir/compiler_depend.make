# Empty compiler generated dependencies file for fig9_pcg_layers.
# This may be replaced when dependencies are built.
