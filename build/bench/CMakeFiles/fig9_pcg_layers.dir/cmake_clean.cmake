file(REMOVE_RECURSE
  "CMakeFiles/fig9_pcg_layers.dir/fig9_pcg_layers.cc.o"
  "CMakeFiles/fig9_pcg_layers.dir/fig9_pcg_layers.cc.o.d"
  "fig9_pcg_layers"
  "fig9_pcg_layers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_pcg_layers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
