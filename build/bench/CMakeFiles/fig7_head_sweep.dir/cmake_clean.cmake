file(REMOVE_RECURSE
  "CMakeFiles/fig7_head_sweep.dir/fig7_head_sweep.cc.o"
  "CMakeFiles/fig7_head_sweep.dir/fig7_head_sweep.cc.o.d"
  "fig7_head_sweep"
  "fig7_head_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_head_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
