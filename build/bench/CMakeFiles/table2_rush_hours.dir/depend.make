# Empty dependencies file for table2_rush_hours.
# This may be replaced when dependencies are built.
