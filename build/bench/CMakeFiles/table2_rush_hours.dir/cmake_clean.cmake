file(REMOVE_RECURSE
  "CMakeFiles/table2_rush_hours.dir/table2_rush_hours.cc.o"
  "CMakeFiles/table2_rush_hours.dir/table2_rush_hours.cc.o.d"
  "table2_rush_hours"
  "table2_rush_hours.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_rush_hours.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
