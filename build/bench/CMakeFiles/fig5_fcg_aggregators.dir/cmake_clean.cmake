file(REMOVE_RECURSE
  "CMakeFiles/fig5_fcg_aggregators.dir/fig5_fcg_aggregators.cc.o"
  "CMakeFiles/fig5_fcg_aggregators.dir/fig5_fcg_aggregators.cc.o.d"
  "fig5_fcg_aggregators"
  "fig5_fcg_aggregators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_fcg_aggregators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
