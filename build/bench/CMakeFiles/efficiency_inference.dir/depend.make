# Empty dependencies file for efficiency_inference.
# This may be replaced when dependencies are built.
