file(REMOVE_RECURSE
  "CMakeFiles/efficiency_inference.dir/efficiency_inference.cc.o"
  "CMakeFiles/efficiency_inference.dir/efficiency_inference.cc.o.d"
  "efficiency_inference"
  "efficiency_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efficiency_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
