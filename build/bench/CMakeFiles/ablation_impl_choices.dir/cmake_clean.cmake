file(REMOVE_RECURSE
  "CMakeFiles/ablation_impl_choices.dir/ablation_impl_choices.cc.o"
  "CMakeFiles/ablation_impl_choices.dir/ablation_impl_choices.cc.o.d"
  "ablation_impl_choices"
  "ablation_impl_choices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_impl_choices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
