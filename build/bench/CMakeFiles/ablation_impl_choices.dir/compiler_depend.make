# Empty compiler generated dependencies file for ablation_impl_choices.
# This may be replaced when dependencies are built.
