# Empty dependencies file for fig6_pcg_aggregators.
# This may be replaced when dependencies are built.
