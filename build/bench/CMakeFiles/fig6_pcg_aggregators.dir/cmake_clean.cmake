file(REMOVE_RECURSE
  "CMakeFiles/fig6_pcg_aggregators.dir/fig6_pcg_aggregators.cc.o"
  "CMakeFiles/fig6_pcg_aggregators.dir/fig6_pcg_aggregators.cc.o.d"
  "fig6_pcg_aggregators"
  "fig6_pcg_aggregators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_pcg_aggregators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
