# Empty dependencies file for fig4_ablations.
# This may be replaced when dependencies are built.
