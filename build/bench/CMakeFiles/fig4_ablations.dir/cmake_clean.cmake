file(REMOVE_RECURSE
  "CMakeFiles/fig4_ablations.dir/fig4_ablations.cc.o"
  "CMakeFiles/fig4_ablations.dir/fig4_ablations.cc.o.d"
  "fig4_ablations"
  "fig4_ablations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_ablations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
