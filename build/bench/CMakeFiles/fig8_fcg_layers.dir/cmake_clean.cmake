file(REMOVE_RECURSE
  "CMakeFiles/fig8_fcg_layers.dir/fig8_fcg_layers.cc.o"
  "CMakeFiles/fig8_fcg_layers.dir/fig8_fcg_layers.cc.o.d"
  "fig8_fcg_layers"
  "fig8_fcg_layers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_fcg_layers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
