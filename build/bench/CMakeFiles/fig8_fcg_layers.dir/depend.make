# Empty dependencies file for fig8_fcg_layers.
# This may be replaced when dependencies are built.
