
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table1_sota_comparison.cc" "bench/CMakeFiles/table1_sota_comparison.dir/table1_sota_comparison.cc.o" "gcc" "bench/CMakeFiles/table1_sota_comparison.dir/table1_sota_comparison.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/stgnn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/stgnn_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/stgnn_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/stgnn_data.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/stgnn_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/stgnn_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/stgnn_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/stgnn_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/stgnn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
